//! The shared correctness harness.
//!
//! The fundamental barrier property: when `wait` returns for episode `k`,
//! every participant has *entered* episode `k`. Each thread publishes its
//! episode counter before waiting and checks every peer's counter after —
//! any barrier that releases early fails the check.

use crate::ShmBarrier;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `iterations` consecutive episodes over `barrier` with its full
/// thread count, checking the barrier property each time.
pub fn exercise<B: ShmBarrier + ?Sized>(barrier: &B, iterations: usize) -> Result<(), String> {
    let n = barrier.num_threads();
    let epochs: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    let failures: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(usize::MAX)).collect();

    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|scope| {
            for tid in 0..n {
                let epochs = &epochs;
                let failures = &failures;
                scope.spawn(move || {
                    for iter in 1..=iterations {
                        epochs[tid].store(iter, Ordering::Release);
                        barrier.wait(tid);
                        for (peer, e) in epochs.iter().enumerate() {
                            let seen = e.load(Ordering::Acquire);
                            if seen < iter {
                                // Record the earliest violation; keep running
                                // so the other threads don't deadlock.
                                let _ = failures[tid].compare_exchange(
                                    usize::MAX,
                                    peer * 1_000_000 + iter,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                );
                            }
                        }
                    }
                });
            }
        });
    }))
    .map_err(|_| "a barrier thread panicked".to_string())?;

    for (tid, f) in failures.iter().enumerate() {
        let v = f.load(Ordering::Relaxed);
        if v != usize::MAX {
            let peer = v / 1_000_000;
            let iter = v % 1_000_000;
            return Err(format!(
                "thread {tid} exited episode {iter} before thread {peer} entered it"
            ));
        }
    }
    Ok(())
}

/// A deliberately broken "barrier" used to prove the harness can fail.
#[cfg(test)]
pub(crate) struct NoBarrier {
    n: usize,
}

#[cfg(test)]
impl ShmBarrier for NoBarrier {
    fn num_threads(&self) -> usize {
        self.n
    }
    fn wait(&self, _tid: usize) {
        // Returns immediately: not a barrier at all.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_detects_a_broken_barrier() {
        // With enough threads and iterations, an immediate-return "barrier"
        // is caught essentially always.
        let b = NoBarrier { n: 4 };
        let r = exercise(&b, 2_000);
        assert!(r.is_err(), "harness failed to catch a non-barrier");
    }

    #[test]
    fn harness_accepts_std_barrier_semantics() {
        // Sanity-check the harness against std's own barrier.
        struct Std {
            inner: std::sync::Barrier,
            n: usize,
        }
        impl ShmBarrier for Std {
            fn num_threads(&self) -> usize {
                self.n
            }
            fn wait(&self, _tid: usize) {
                self.inner.wait();
            }
        }
        let b = Std {
            inner: std::sync::Barrier::new(4),
            n: 4,
        };
        exercise(&b, 200).unwrap();
    }
}
