//! Cache-line padding for contended atomics.
//!
//! A minimal stand-in for `crossbeam_utils::CachePadded` (the build
//! environment is offline): aligning each flag to 128 bytes keeps every
//! per-thread slot on its own cache line — 128 rather than 64 to cover
//! adjacent-line prefetching on modern x86 and the 128-byte lines of some
//! aarch64 parts.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so neighbouring values never share a
/// cache line (no false sharing between per-thread barrier flags).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap a value in padding.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap, discarding the padding.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_size() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u64>>() >= 128);
    }

    #[test]
    fn deref_round_trips() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }
}
