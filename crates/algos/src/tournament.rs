//! The tournament barrier (Hensgen/Finkel; MCS presentation).
//!
//! Threads are statically paired per round; the loser signals the winner
//! and blocks, the winner advances. Thread 0 becomes the champion and
//! starts a wakeup wave back down its winning rounds. Like the cluster
//! algorithms, arrivals take ⌈log₂N⌉ rounds — but with *statically known*
//! communication partners, which is what makes the tournament (and the
//! paper's NIC schedules) amenable to pre-armed triggers.

use crate::pad::CachePadded;
use crate::{ceil_log2, spin_wait, ShmBarrier};
use std::sync::atomic::{AtomicBool, Ordering};

/// Per-round role of a thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Role {
    /// Waits for the loser's signal and advances.
    Winner,
    /// Signals the winner and blocks until woken.
    Loser,
    /// No partner this round (non-power-of-two sizes); advances freely.
    Bye,
    /// Thread 0 in its final round: winning it completes the barrier.
    Champion,
    /// Already lost in an earlier round.
    Dropout,
}

/// The tournament barrier.
pub struct TournamentBarrier {
    n: usize,
    rounds: usize,
    /// roles[tid][round], precomputed.
    roles: Vec<Vec<Role>>,
    /// arrival[tid][round]: set by the loser paired with `tid`.
    arrival: Vec<Vec<CachePadded<AtomicBool>>>,
    /// wakeup[tid]: set by the winner that beat `tid`.
    wakeup: Vec<CachePadded<AtomicBool>>,
    /// Per-thread sense (owner-only writes).
    sense: Vec<CachePadded<AtomicBool>>,
}

impl TournamentBarrier {
    /// Build for `n` threads.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "empty barrier");
        let rounds = ceil_log2(n);
        let mut roles = vec![vec![Role::Dropout; rounds]; n];
        for (tid, row) in roles.iter_mut().enumerate() {
            let mut active = true;
            for (k, slot) in row.iter_mut().enumerate() {
                if !active {
                    break; // stays Dropout
                }
                let pair = 1usize << (k + 1);
                let half = 1usize << k;
                *slot = if tid % pair == 0 {
                    if tid + half < n {
                        if tid == 0 && pair >= n {
                            Role::Champion
                        } else {
                            Role::Winner
                        }
                    } else {
                        Role::Bye
                    }
                } else {
                    active = false;
                    Role::Loser
                };
            }
        }
        TournamentBarrier {
            n,
            rounds,
            roles,
            arrival: (0..n)
                .map(|_| {
                    (0..rounds)
                        .map(|_| CachePadded::new(AtomicBool::new(false)))
                        .collect()
                })
                .collect(),
            wakeup: (0..n)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            sense: (0..n)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
        }
    }

    /// Arrival rounds (⌈log₂N⌉).
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

impl ShmBarrier for TournamentBarrier {
    fn num_threads(&self) -> usize {
        self.n
    }

    fn wait(&self, tid: usize) {
        let sense = !self.sense[tid].load(Ordering::Relaxed);
        self.sense[tid].store(sense, Ordering::Relaxed);

        // Arrival phase: climb until we lose (or run the table as champion).
        let mut lost_at = self.rounds;
        for k in 0..self.rounds {
            match self.roles[tid][k] {
                Role::Loser => {
                    let winner = tid - (1 << k);
                    self.arrival[winner][k].store(sense, Ordering::Release);
                    spin_wait(|| self.wakeup[tid].load(Ordering::Acquire) == sense);
                    lost_at = k;
                    break;
                }
                Role::Winner | Role::Champion => {
                    spin_wait(|| self.arrival[tid][k].load(Ordering::Acquire) == sense);
                }
                Role::Bye => {}
                Role::Dropout => unreachable!("dropout rounds are skipped by the break"),
            }
        }

        // Wakeup phase: release every thread that lost to us, top down.
        for k in (0..lost_at).rev() {
            if matches!(self.roles[tid][k], Role::Winner | Role::Champion) {
                let loser = tid + (1 << k);
                self.wakeup[loser].store(sense, Ordering::Release);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::exercise;

    #[test]
    fn roles_for_three_threads() {
        let b = TournamentBarrier::new(3);
        assert_eq!(b.roles[0][0], Role::Winner);
        assert_eq!(b.roles[0][1], Role::Champion);
        assert_eq!(b.roles[1][0], Role::Loser);
        assert_eq!(b.roles[2][0], Role::Bye);
        assert_eq!(b.roles[2][1], Role::Loser);
    }

    #[test]
    fn champion_exists_exactly_once() {
        for n in [2usize, 3, 4, 5, 8, 13, 16] {
            let b = TournamentBarrier::new(n);
            let champions: usize = b
                .roles
                .iter()
                .map(|row| row.iter().filter(|&&r| r == Role::Champion).count())
                .sum();
            assert_eq!(champions, 1, "n={n}");
        }
    }

    #[test]
    fn synchronizes_various_thread_counts() {
        for n in [2usize, 3, 4, 5, 6, 7, 8] {
            exercise(&TournamentBarrier::new(n), 500).unwrap();
        }
    }

    #[test]
    fn single_thread_is_a_noop() {
        let b = TournamentBarrier::new(1);
        for _ in 0..10 {
            b.wait(0);
        }
    }
}
