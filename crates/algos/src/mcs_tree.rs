//! The MCS tree barrier (Mellor-Crummey & Scott 1991, the paper's ref
//! \[12\]): 4-ary arrival tree, binary wakeup tree.
//!
//! Each thread spins only on locations it owns: arrival propagates up as
//! children clear their slot in the parent's `child_not_ready` vector;
//! wakeup propagates down a separate binary tree of sense-reversed flags.
//! This is the gather-broadcast shape of the paper's Fig. 2, with the
//! re-arm-before-signal trick standing in for epoch banking.

use crate::pad::CachePadded;
use crate::{spin_wait, ShmBarrier};
use std::sync::atomic::{AtomicBool, Ordering};

const ARITY: usize = 4;

struct Node {
    /// Slot `j` is true while arrival child `j` has not arrived.
    child_not_ready: [AtomicBool; ARITY],
    /// Which arrival-tree children exist (static).
    have_child: [bool; ARITY],
    /// Wakeup flag, sense-reversed, set by the wakeup-tree parent.
    wakeup: CachePadded<AtomicBool>,
    /// Per-thread sense (owner-only writes).
    sense: CachePadded<AtomicBool>,
}

/// The MCS 4-ary/2-ary tree barrier.
pub struct McsTreeBarrier {
    n: usize,
    nodes: Vec<Node>,
}

impl McsTreeBarrier {
    /// Build for `n` threads.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "empty barrier");
        let nodes = (0..n)
            .map(|i| {
                let have_child = std::array::from_fn(|j| ARITY * i + j + 1 < n);
                Node {
                    child_not_ready: std::array::from_fn(|j| AtomicBool::new(have_child[j])),
                    have_child,
                    wakeup: CachePadded::new(AtomicBool::new(false)),
                    sense: CachePadded::new(AtomicBool::new(false)),
                }
            })
            .collect();
        McsTreeBarrier { n, nodes }
    }
}

impl ShmBarrier for McsTreeBarrier {
    fn num_threads(&self) -> usize {
        self.n
    }

    fn wait(&self, tid: usize) {
        let me = &self.nodes[tid];
        let sense = !me.sense.load(Ordering::Relaxed);
        me.sense.store(sense, Ordering::Relaxed);

        // Arrival: wait for all 4-ary children, then re-arm *before*
        // signalling up — a child can only race into the next episode after
        // the global wakeup, which happens-after this re-arm.
        spin_wait(|| {
            me.child_not_ready
                .iter()
                .all(|c| !c.load(Ordering::Acquire))
        });
        for (j, c) in me.child_not_ready.iter().enumerate() {
            c.store(me.have_child[j], Ordering::Relaxed);
        }
        if tid != 0 {
            let parent = (tid - 1) / ARITY;
            let slot = (tid - 1) % ARITY;
            self.nodes[parent].child_not_ready[slot].store(false, Ordering::Release);
            // Block until the binary wakeup tree reaches us.
            spin_wait(|| me.wakeup.load(Ordering::Acquire) == sense);
        }

        // Wakeup: release binary-tree children.
        for c in [2 * tid + 1, 2 * tid + 2] {
            if c < self.n {
                self.nodes[c].wakeup.store(sense, Ordering::Release);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::exercise;

    #[test]
    fn arrival_tree_structure() {
        let b = McsTreeBarrier::new(6);
        assert_eq!(b.nodes[0].have_child, [true, true, true, true]);
        assert_eq!(b.nodes[1].have_child, [true, false, false, false]);
        assert_eq!(b.nodes[2].have_child, [false, false, false, false]);
    }

    #[test]
    fn synchronizes_various_thread_counts() {
        for n in [2usize, 3, 4, 5, 6, 7, 8] {
            exercise(&McsTreeBarrier::new(n), 500).unwrap();
        }
    }

    #[test]
    fn single_thread_is_a_noop() {
        let b = McsTreeBarrier::new(1);
        for _ in 0..10 {
            b.wait(0);
        }
    }
}
