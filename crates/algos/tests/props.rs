//! Property tests for the shared-memory barriers: every implementation
//! must satisfy the barrier property for arbitrary thread counts and
//! episode counts (bounded to keep wall time sane).

use nicbar_algos::{
    harness::exercise, CentralSenseBarrier, DisseminationBarrier, McsTreeBarrier, PairwiseBarrier,
    ShmBarrier, TournamentBarrier,
};
use proptest::prelude::*;

fn check_all(n: usize, iterations: usize) -> Result<(), TestCaseError> {
    let barriers: Vec<(&str, Box<dyn ShmBarrier>)> = vec![
        ("central", Box::new(CentralSenseBarrier::new(n))),
        ("dissemination", Box::new(DisseminationBarrier::new(n))),
        ("pairwise", Box::new(PairwiseBarrier::new(n))),
        ("tournament", Box::new(TournamentBarrier::new(n))),
        ("mcs_tree", Box::new(McsTreeBarrier::new(n))),
    ];
    for (name, b) in barriers {
        exercise(b.as_ref(), iterations)
            .map_err(|e| TestCaseError::fail(format!("{name} (n={n}): {e}")))?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn all_barriers_synchronize_arbitrary_thread_counts(
        n in 1usize..10,
        iterations in 50usize..200,
    ) {
        check_all(n, iterations)?;
    }
}

#[test]
fn oversubscribed_thread_counts_still_synchronize() {
    // More threads than most CI machines have cores: the yielding spin
    // loops must keep making progress.
    check_all(12, 100).unwrap();
}
