//! The checked-in allowlist (`lint.toml` at the repo root).
//!
//! Each `[[allow]]` table records one audited exception: a rule id, the
//! file it applies to, an optional `line_contains` substring narrowing it
//! to specific lines, a `count` capping how many findings it may absorb
//! (so a file cannot silently accumulate new violations behind a blanket
//! entry), and a mandatory human `reason`.
//!
//! The parser covers exactly the TOML subset the file uses — `[[allow]]`
//! headers, `key = "string"` and `key = integer` pairs, `#` comments —
//! because the offline build has no `toml` crate.

/// One audited exception.
#[derive(Clone, Debug, Default)]
pub struct AllowEntry {
    /// Rule id this entry silences.
    pub rule: String,
    /// Repo-relative path it applies to.
    pub path: String,
    /// If set, only findings whose source line contains this substring.
    pub line_contains: Option<String>,
    /// Maximum findings this entry may absorb.
    pub count: u64,
    /// Why the exception is sound (mandatory).
    pub reason: String,
    /// How many findings this entry absorbed during the scan.
    pub used: u64,
    /// Line in lint.toml where the entry starts (for diagnostics).
    pub decl_line: u32,
}

/// Parse `lint.toml`. Returns entries or a (line, message) error.
pub fn parse(src: &str) -> Result<Vec<AllowEntry>, (u32, String)> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut in_entry = false;
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            entries.push(AllowEntry {
                count: u64::MAX,
                decl_line: lineno,
                ..AllowEntry::default()
            });
            in_entry = true;
            continue;
        }
        if line.starts_with('[') {
            return Err((lineno, format!("unknown table {line}")));
        }
        if !in_entry {
            return Err((lineno, "key outside [[allow]] table".to_string()));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err((lineno, format!("expected key = value, got {line}")));
        };
        let key = key.trim();
        let value = value.trim();
        let entry = entries
            .last_mut()
            .unwrap_or_else(|| unreachable!("in_entry"));
        let as_string = |v: &str| -> Result<String, (u32, String)> {
            let v = v
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| (lineno, format!("{key} must be a quoted string")))?;
            Ok(v.to_string())
        };
        match key {
            "rule" => entry.rule = as_string(value)?,
            "path" => entry.path = as_string(value)?,
            "line_contains" => entry.line_contains = Some(as_string(value)?),
            "reason" => entry.reason = as_string(value)?,
            "count" => {
                entry.count = value
                    .parse()
                    .map_err(|_| (lineno, format!("count must be an integer, got {value}")))?;
            }
            other => return Err((lineno, format!("unknown key {other}"))),
        }
    }
    for e in &entries {
        if e.rule.is_empty() || e.path.is_empty() {
            return Err((e.decl_line, "entry needs both rule and path".to_string()));
        }
        if e.reason.is_empty() {
            return Err((
                e.decl_line,
                format!("entry for {} in {} needs a reason", e.rule, e.path),
            ));
        }
    }
    Ok(entries)
}

impl AllowEntry {
    /// Does this entry (with remaining capacity) cover a finding on
    /// `line_text` of `path` for `rule`?
    pub fn covers(&self, rule: &str, path: &str, line_text: &str) -> bool {
        self.used < self.count
            && self.rule == rule
            && self.path == path
            && self
                .line_contains
                .as_ref()
                .is_none_or(|s| line_text.contains(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_with_defaults() {
        let src = r#"
# comment
[[allow]]
rule = "ND003"
path = "crates/core/src/traffic.rs"
line_contains = "HashSet<MsgId>"
count = 1
reason = "order never observed"

[[allow]]
rule = "PI003"
path = "crates/gm/src/nic.rs"
reason = "audited invariant expects"
"#;
        let entries = parse(src).expect("parse");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].count, 1);
        assert_eq!(entries[1].count, u64::MAX);
        assert!(entries[0].covers("ND003", "crates/core/src/traffic.rs", "x: HashSet<MsgId>,"));
        assert!(!entries[0].covers("ND003", "crates/core/src/traffic.rs", "other line"));
        assert!(entries[1].covers("PI003", "crates/gm/src/nic.rs", "anything"));
    }

    #[test]
    fn missing_reason_rejected() {
        let src = "[[allow]]\nrule = \"ND003\"\npath = \"x.rs\"\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn unknown_key_rejected() {
        let src = "[[allow]]\nrule = \"ND003\"\npath = \"x.rs\"\nreason = \"r\"\nbogus = 1\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn count_cap_exhausts() {
        let src = "[[allow]]\nrule = \"PI003\"\npath = \"a.rs\"\ncount = 2\nreason = \"r\"\n";
        let mut entries = parse(src).expect("parse");
        let e = &mut entries[0];
        // Absorb exactly `count` findings the way the scanner does, then
        // the entry must stop covering: a blanket entry cannot silently
        // absorb a violation added after the audit.
        for _ in 0..2 {
            assert!(e.covers("PI003", "a.rs", "expect(...)"));
            e.used += 1;
        }
        assert!(!e.covers("PI003", "a.rs", "expect(...)"));
    }

    #[test]
    fn line_contains_mismatch_rejects_rule_and_path_match() {
        let src = "[[allow]]\nrule = \"ND003\"\npath = \"a.rs\"\n\
                   line_contains = \"HashSet<MsgId>\"\nreason = \"r\"\n";
        let entries = parse(src).expect("parse");
        // Same rule, same file, different line text: not covered — the
        // narrowing substring pins the exception to the audited site.
        assert!(!entries[0].covers("ND003", "a.rs", "for v in self.other.iter() {"));
        // And rule/path mismatches never consult line_contains at all.
        assert!(!entries[0].covers("ND001", "a.rs", "x: HashSet<MsgId>,"));
        assert!(!entries[0].covers("ND003", "b.rs", "x: HashSet<MsgId>,"));
    }

    #[test]
    fn first_matching_entry_absorbs_then_overflow_falls_through() {
        // Two entries covering the same (rule, path): the scanner's
        // first-match-wins loop must drain the first entry's cap before
        // the second absorbs anything, so neither is reported stale.
        let src = "[[allow]]\nrule = \"PI003\"\npath = \"a.rs\"\ncount = 1\nreason = \"r1\"\n\
                   [[allow]]\nrule = \"PI003\"\npath = \"a.rs\"\ncount = 1\nreason = \"r2\"\n";
        let mut entries = parse(src).expect("parse");
        for _ in 0..2 {
            let e = entries
                .iter_mut()
                .find(|e| e.covers("PI003", "a.rs", "expect(...)"))
                .expect("an entry still has capacity");
            e.used += 1;
        }
        assert_eq!(entries[0].used, 1);
        assert_eq!(entries[1].used, 1);
        // A third finding exceeds both caps and must fall through.
        assert!(!entries
            .iter()
            .any(|e| e.covers("PI003", "a.rs", "expect(...)")));
    }
}
