//! Flow-sensitive nondeterminism analysis over the parsed item trees.
//!
//! The token-level ND rules flagged *keywords*: every `Instant` mention and
//! every `HashMap` declaration, wherever it sat. That forced allowlist
//! entries for code that is provably harmless (a wall-clock kept for host
//! self-profiling, a `HashSet` that is only ever probed) and said nothing
//! about the actual hazard: nondeterminism *reaching sim-visible state*.
//!
//! This module replaces the keyword checks for ND001 and ND003 with a
//! conservative dataflow over [`crate::parser::FileTree`]s:
//!
//! * **ND001 (wall-clock taint)** — `Instant` / `SystemTime` values are
//!   taint sources. Taint propagates through `let` bindings, struct fields
//!   typed as a clock, and *calls*: a cross-crate call graph is built and a
//!   fixpoint marks every function whose return value can carry taint.
//!   A finding is reported only where taint flows into a **sink** — an
//!   engine scheduling/telemetry call (`send*`, `schedule_*`, `count*`,
//!   `span`, `push*`) or a `SimTime` construction — at the sink's line.
//! * **ND003 (hash-order iteration)** — `HashMap`/`HashSet` bindings,
//!   params and fields are tracked by type; a finding is reported only
//!   where one is *iterated* (`.iter()`, `.keys()`, `.drain()`, …, or a
//!   `for … in` loop), because only iteration order can leak into event
//!   order. Insert/lookup/remove on a hash container is deterministic and
//!   now legal without an allowlist entry.
//!
//! Resolution is deliberately conservative in the *quiet* direction: a
//! method call whose receiver type cannot be determined is not propagated
//! (never invent taint), and `#[cfg(test)]` functions are skipped entirely.

use crate::lexer::{Tok, Token};
use crate::parser::{FileTree, FnItem};
use crate::rules::{Finding, Scope};
use std::collections::{BTreeMap, BTreeSet};

/// Engine calls through which a tainted value becomes sim-visible state.
const SINKS: &[&str] = &[
    "send",
    "send_at",
    "send_self",
    "send_batch",
    "schedule_at",
    "schedule_in",
    "schedule_batch",
    "count",
    "count_id",
    "span",
    "push",
    "push_batch",
];

/// Methods whose call on a hash container observes its iteration order.
const ITERS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

fn is_clock_ty(ty: &str) -> bool {
    ty.contains("Instant") || ty.contains("SystemTime")
}

fn is_hash_ty(ty: &str) -> bool {
    ty.contains("HashMap") || ty.contains("HashSet")
}

/// `(file index, fn index)` — a function's identity across the workspace.
type FnId = (usize, usize);

/// Cross-file lookup tables.
struct Index {
    /// `(owner type, method name)` → fn.
    methods: BTreeMap<(String, String), FnId>,
    /// Free fn name → every fn with that name (resolved only if unique).
    free: BTreeMap<String, Vec<FnId>>,
    /// `(owner type, field name)` → flattened type text.
    fields: BTreeMap<(String, String), String>,
}

impl Index {
    fn build(files: &[(FileTree, Scope)]) -> Self {
        let mut methods = BTreeMap::new();
        let mut free: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut fields = BTreeMap::new();
        for (fi, (tree, _)) in files.iter().enumerate() {
            for (ki, f) in tree.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                match &f.owner {
                    Some(owner) => {
                        methods.insert((owner.clone(), f.name.clone()), (fi, ki));
                    }
                    None => free.entry(f.name.clone()).or_default().push((fi, ki)),
                }
            }
            for fld in &tree.fields {
                fields.insert((fld.owner.clone(), fld.name.clone()), fld.ty.clone());
            }
        }
        Index {
            methods,
            free,
            fields,
        }
    }
}

/// Per-function environment: declared types and taint/hash sets for local
/// names (params and `let` bindings).
#[derive(Default)]
struct Env {
    types: BTreeMap<String, String>,
    tainted: BTreeSet<String>,
    hashed: BTreeSet<String>,
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// First meaningful ident of a type range — `&mut Vec<T>` → `Vec`.
fn base_ty(ty: &str) -> &str {
    let start = ty
        .char_indices()
        .find(|(_, c)| c.is_alphabetic() || *c == '_')
        .map_or(ty.len(), |(i, _)| i);
    let rest = &ty[start..];
    let end = rest
        .char_indices()
        .find(|(_, c)| !c.is_alphanumeric() && *c != '_')
        .map_or(rest.len(), |(i, _)| i);
    let word = &rest[..end];
    if matches!(word, "mut" | "dyn" | "impl") {
        base_ty(&rest[end..])
    } else {
        word
    }
}

/// Parse the parameter list of `f`'s signature into `env.types` (and seed
/// the taint/hash sets from parameter types).
fn seed_params(tree: &FileTree, f: &FnItem, env: &mut Env) {
    let toks = &tree.toks;
    let (lo, hi) = f.sig;
    // Find the parameter '(' — the first '(' after the fn name + generics.
    let mut i = lo;
    while i < hi && !punct_at(toks, i, '(') {
        i += 1;
    }
    let mut depth = 0isize;
    let open = i;
    let mut close = i;
    while close < hi {
        match toks.get(close).map(|t| &t.tok) {
            Some(Tok::Punct('(')) => depth += 1,
            Some(Tok::Punct(')')) => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        close += 1;
    }
    let mut i = open + 1;
    while i < close {
        // `name : Type` pairs (skip `self`, `mut`, pattern innards).
        if let Some(name) = ident_at(toks, i) {
            if name != "self"
                && name != "mut"
                && punct_at(toks, i + 1, ':')
                && !punct_at(toks, i + 2, ':')
            {
                // Type: to the ',' at angle/paren depth 0 or the close.
                let mut j = i + 2;
                let mut angle = 0isize;
                let mut inner = 0isize;
                while j < close {
                    match &toks[j].tok {
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>') => angle -= 1,
                        Tok::Punct('(' | '[') => inner += 1,
                        Tok::Punct(')' | ']') => inner -= 1,
                        Tok::Punct(',') if angle <= 0 && inner <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let ty = crate::parser::flatten(toks, (i + 2, j));
                if is_clock_ty(&ty) {
                    env.tainted.insert(name.to_string());
                }
                if is_hash_ty(&ty) {
                    env.hashed.insert(name.to_string());
                }
                env.types.insert(name.to_string(), ty);
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// The analysis driver.
struct Analysis<'a> {
    files: &'a [(FileTree, Scope)],
    index: Index,
    /// Functions whose return value can carry wall-clock taint.
    returns_taint: BTreeSet<FnId>,
}

impl<'a> Analysis<'a> {
    /// Resolve the call `name(` at token `i` to a workspace function.
    /// `owner` is the enclosing impl type (receiver of `self`).
    fn resolve_call(
        &self,
        toks: &[Token],
        i: usize,
        env: &Env,
        owner: Option<&str>,
    ) -> Option<FnId> {
        let name = ident_at(toks, i)?;
        if !punct_at(toks, i + 1, '(') {
            return None;
        }
        if i >= 1 && punct_at(toks, i - 1, '.') {
            // Method call: type the receiver or stay silent.
            let recv = ident_at(toks, i - 2)?;
            let recv_ty: Option<String> = if recv == "self" {
                owner.map(str::to_string)
            } else if i >= 4 && punct_at(toks, i - 3, '.') && ident_at(toks, i - 4) == Some("self")
            {
                // `self.field.m(...)` — type the field.
                owner
                    .and_then(|o| self.index.fields.get(&(o.to_string(), recv.to_string())))
                    .map(|ty| base_ty(ty).to_string())
            } else {
                env.types.get(recv).map(|ty| base_ty(ty).to_string())
            };
            let ty = recv_ty?;
            return self.index.methods.get(&(ty, name.to_string())).copied();
        }
        if i >= 2 && punct_at(toks, i - 1, ':') && punct_at(toks, i - 2, ':') {
            // `Type::assoc(...)`.
            let ty = ident_at(toks, i - 3)?;
            return self
                .index
                .methods
                .get(&(ty.to_string(), name.to_string()))
                .copied();
        }
        // Bare call: resolve only a workspace-unique free fn.
        match self.index.free.get(name).map(Vec::as_slice) {
            Some([only]) => Some(*only),
            _ => None,
        }
    }

    /// Is the token at `i` a taint atom under `env`?
    fn is_atom(&self, toks: &[Token], i: usize, env: &Env, owner: Option<&str>) -> bool {
        let Some(name) = ident_at(toks, i) else {
            return false;
        };
        if name == "Instant" || name == "SystemTime" {
            return true;
        }
        if env.tainted.contains(name) && (i == 0 || !punct_at(toks, i - 1, '.')) {
            return true;
        }
        // `self.field` where the field's type is a clock.
        if i >= 2 && punct_at(toks, i - 1, '.') && ident_at(toks, i - 2) == Some("self") {
            if let Some(o) = owner {
                if let Some(ty) = self.index.fields.get(&(o.to_string(), name.to_string())) {
                    if is_clock_ty(ty) {
                        return true;
                    }
                }
            }
        }
        // A call to a taint-returning function.
        if punct_at(toks, i + 1, '(') {
            if let Some(id) = self.resolve_call(toks, i, env, owner) {
                if self.returns_taint.contains(&id) {
                    return true;
                }
            }
        }
        false
    }

    /// Is `name` (at `i`) a hash container read under `env`? Covers a
    /// bare binding/param and a `self.field` access.
    fn is_hash_expr(&self, toks: &[Token], i: usize, env: &Env, owner: Option<&str>) -> bool {
        let Some(name) = ident_at(toks, i) else {
            return false;
        };
        if env.hashed.contains(name) && (i == 0 || !punct_at(toks, i - 1, '.')) {
            return true;
        }
        if i >= 2 && punct_at(toks, i - 1, '.') && ident_at(toks, i - 2) == Some("self") {
            if let Some(o) = owner {
                if let Some(ty) = self.index.fields.get(&(o.to_string(), name.to_string())) {
                    return is_hash_ty(ty);
                }
            }
        }
        false
    }

    /// Scan one function body. When `out` is `Some`, sink findings are
    /// appended; the return value reports whether any taint atom exists in
    /// the body (the `returns_taint` ingredient).
    fn scan_fn(&self, fi: usize, f: &FnItem, out: &mut Option<(&mut Vec<Finding>, Scope)>) -> bool {
        let tree = &self.files[fi].0;
        let toks = &tree.toks;
        let Some((blo, bhi)) = f.body else {
            return false;
        };
        let owner = f.owner.as_deref();
        let mut env = Env::default();
        seed_params(tree, f, &mut env);
        let mut has_atom = false;
        let mut i = blo;
        while i <= bhi {
            let Some(name) = ident_at(toks, i) else {
                i += 1;
                continue;
            };
            // --- `let` binding: classify the initializer ----------------
            if name == "let" {
                // Binding name: first ident after `let` (skipping `mut`),
                // ignored for destructuring patterns (conservative).
                let mut j = i + 1;
                if ident_at(toks, j) == Some("mut") {
                    j += 1;
                }
                if let Some(bind) = ident_at(toks, j) {
                    if !punct_at(toks, j + 1, ',') && !punct_at(toks, j + 1, ')') {
                        // Optional `: Type` ascription.
                        let mut k = j + 1;
                        let mut ty_text = String::new();
                        if punct_at(toks, k, ':') && !punct_at(toks, k + 1, ':') {
                            let ty_start = k + 1;
                            let mut angle = 0isize;
                            while k <= bhi {
                                match &toks[k].tok {
                                    Tok::Punct('<') => angle += 1,
                                    Tok::Punct('>') => angle -= 1,
                                    Tok::Punct('=' | ';') if angle <= 0 => break,
                                    _ => {}
                                }
                                k += 1;
                            }
                            ty_text = crate::parser::flatten(toks, (ty_start, k));
                        }
                        // Initializer: `= expr ;` at brace/paren depth 0.
                        let mut taint = is_clock_ty(&ty_text);
                        let mut hash = is_hash_ty(&ty_text);
                        if punct_at(toks, k, '=') && !punct_at(toks, k + 1, '=') {
                            let mut depth = 0isize;
                            let mut e = k + 1;
                            while e <= bhi {
                                match &toks[e].tok {
                                    Tok::Punct('(' | '[' | '{') => depth += 1,
                                    Tok::Punct(')' | ']' | '}') => depth -= 1,
                                    Tok::Punct(';') if depth <= 0 => break,
                                    Tok::Ident(s) if s == "HashMap" || s == "HashSet" => {
                                        hash = true;
                                    }
                                    _ => {}
                                }
                                if self.is_atom(toks, e, &env, owner) {
                                    taint = true;
                                }
                                if self.is_hash_expr(toks, e, &env, owner) {
                                    hash = true;
                                }
                                e += 1;
                            }
                        }
                        if taint {
                            env.tainted.insert(bind.to_string());
                        }
                        if hash {
                            env.hashed.insert(bind.to_string());
                        }
                        if !ty_text.is_empty() {
                            env.types.insert(bind.to_string(), ty_text);
                        }
                    }
                }
                i += 1;
                continue;
            }
            // --- taint atoms (for the returns_taint fixpoint) -----------
            if self.is_atom(toks, i, &env, owner) {
                has_atom = true;
            }
            if let Some((out, scope)) = out.as_mut() {
                let line = toks[i].line;
                // --- ND001: taint reaching a sink -----------------------
                if scope.nondet {
                    let sink_args: Option<(usize, &'static str)> = if SINKS.contains(&name)
                        && punct_at(toks, i + 1, '(')
                        && punct_at(toks, i - 1, '.')
                    {
                        Some((i + 1, "engine sink"))
                    } else if name == "SimTime" {
                        // `SimTime(x)` or `SimTime::from_ns(x)` construction.
                        if punct_at(toks, i + 1, '(') {
                            Some((i + 1, "SimTime construction"))
                        } else if punct_at(toks, i + 1, ':')
                            && punct_at(toks, i + 2, ':')
                            && ident_at(toks, i + 3)
                                .is_some_and(|m| m.starts_with("from") || m == "new")
                            && punct_at(toks, i + 4, '(')
                        {
                            Some((i + 4, "SimTime construction"))
                        } else {
                            None
                        }
                    } else {
                        None
                    };
                    if let Some((open, what)) = sink_args {
                        let mut depth = 0isize;
                        let mut j = open;
                        while j <= bhi {
                            match &toks[j].tok {
                                Tok::Punct('(') => depth += 1,
                                Tok::Punct(')') => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            if self.is_atom(toks, j, &env, owner) {
                                out.push(Finding {
                                    rule: "ND001",
                                    path: tree.path.clone(),
                                    line,
                                    message: format!(
                                        "wall-clock taint reaches {what} `{name}` (source propagated through calls/bindings)"
                                    ),
                                });
                                break;
                            }
                            j += 1;
                        }
                    }
                }
                // --- ND003: hash-order iteration ------------------------
                if scope.hash_state {
                    if ITERS.contains(&name)
                        && punct_at(toks, i + 1, '(')
                        && punct_at(toks, i - 1, '.')
                    {
                        let hashed_recv = self.is_hash_expr(toks, i - 2, &env, owner)
                            || (i >= 4
                                && punct_at(toks, i - 3, '.')
                                && ident_at(toks, i - 4) == Some("self")
                                && self.is_hash_expr(toks, i - 2, &env, owner));
                        if hashed_recv {
                            out.push(Finding {
                                rule: "ND003",
                                path: tree.path.clone(),
                                line,
                                message: format!(
                                    "hash-order iteration (`.{name}()` on a HashMap/HashSet) can reach event order"
                                ),
                            });
                        }
                    }
                    if name == "for" {
                        // `for pat in expr {` — scan the expr for a hash
                        // container read.
                        let mut j = i + 1;
                        let mut depth = 0isize;
                        while j <= bhi && !(depth == 0 && ident_at(toks, j) == Some("in")) {
                            match &toks[j].tok {
                                Tok::Punct('(' | '[') => depth += 1,
                                Tok::Punct(')' | ']') => depth -= 1,
                                _ => {}
                            }
                            j += 1;
                        }
                        let mut e = j + 1;
                        let mut depth = 0isize;
                        while e <= bhi {
                            match &toks[e].tok {
                                Tok::Punct('(' | '[') => depth += 1,
                                Tok::Punct(')' | ']') => depth -= 1,
                                Tok::Punct('{') if depth == 0 => break,
                                _ => {}
                            }
                            if self.is_hash_expr(toks, e, &env, owner)
                                && !punct_at(toks, e + 1, '.')
                            {
                                out.push(Finding {
                                    rule: "ND003",
                                    path: tree.path.clone(),
                                    line: toks[i].line,
                                    message:
                                        "hash-order iteration (`for … in` over a HashMap/HashSet) can reach event order"
                                            .to_string(),
                                });
                                break;
                            }
                            e += 1;
                        }
                    }
                }
            }
            i += 1;
        }
        has_atom
    }
}

/// Run the flow analysis over the workspace; `files` pairs each parsed
/// tree with its scan scope. Findings are deduplicated per (rule, line).
pub fn analyze(files: &[(FileTree, Scope)]) -> Vec<Finding> {
    let mut analysis = Analysis {
        files,
        index: Index::build(files),
        returns_taint: BTreeSet::new(),
    };
    // Fixpoint: a fn returns taint if it returns a value and its body can
    // produce one (conservative: any atom anywhere in the body).
    loop {
        let mut changed = false;
        for (fi, (tree, _)) in files.iter().enumerate() {
            for (ki, f) in tree.fns.iter().enumerate() {
                let id = (fi, ki);
                if f.in_test || !f.returns_value || analysis.returns_taint.contains(&id) {
                    continue;
                }
                if analysis.scan_fn(fi, f, &mut None) {
                    analysis.returns_taint.insert(id);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Reporting pass.
    let mut out = Vec::new();
    for (fi, (tree, scope)) in files.iter().enumerate() {
        if !scope.nondet && !scope.hash_state {
            continue;
        }
        for f in &tree.fns {
            if f.in_test {
                continue;
            }
            let mut sink = Some((&mut out, *scope));
            analysis.scan_fn(fi, f, &mut sink);
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out.dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn nd_scope() -> Scope {
        Scope {
            nondet: true,
            hash_state: true,
            ..Scope::default()
        }
    }

    fn run(src: &str) -> Vec<(String, u32)> {
        let tree = parse("t.rs", lex(src));
        analyze(&[(tree, nd_scope())])
            .into_iter()
            .map(|f| (f.rule.to_string(), f.line))
            .collect()
    }

    #[test]
    fn direct_instant_into_sink_flagged_at_sink() {
        let src = "fn f(ctx: &mut Ctx) {\nlet t = Instant::now();\nctx.schedule_at(SimTime::from_ns(elapsed(t)), 0);\n}";
        let got = run(src);
        // Two sinks on line 3: the schedule_at call and the SimTime
        // construction — deduped to one finding per line.
        assert_eq!(got, vec![("ND001".to_string(), 3)]);
    }

    #[test]
    fn taint_through_call_chain_and_field() {
        let src = r#"
            struct Clock { epoch: Instant }
            impl Clock {
                fn now_ns(&self) -> u64 { self.epoch.elapsed().as_nanos() as u64 }
            }
            fn caller(c: &Clock, ctx: &mut Ctx) {
                let t = wrap(c);
                ctx.count(t);
            }
            fn wrap(c: &Clock) -> u64 { c.now_ns() }
        "#;
        let got = run(src);
        assert_eq!(got, vec![("ND001".to_string(), 8)]);
    }

    #[test]
    fn clock_kept_for_metrics_only_is_clean() {
        // A wall clock that never reaches a sink: no findings (this is the
        // ProfClock pattern the old keyword rule needed 4 allowlist
        // entries for).
        let src = r#"
            struct Prof { epoch: Instant, total: u64 }
            impl Prof {
                fn now_ns(&self) -> u64 { self.epoch.elapsed().as_nanos() as u64 }
                fn lap(&mut self) { self.total += self.now_ns(); }
            }
        "#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn hash_lookup_clean_iteration_flagged() {
        let src = r#"
            fn probe(seen: &mut HashSet<u64>, x: u64) -> bool { seen.insert(x) }
            fn order(seen: &HashSet<u64>) -> u64 {
                let mut acc = 0;
                for v in seen {
                    acc += v;
                }
                acc + seen.iter().count() as u64
            }
        "#;
        let got = run(src);
        assert_eq!(
            got,
            vec![("ND003".to_string(), 5), ("ND003".to_string(), 8)]
        );
    }

    #[test]
    fn hash_field_iteration_flagged_lookup_clean() {
        let src = r#"
            struct S { ids: HashSet<u64> }
            impl S {
                fn has(&self, x: u64) -> bool { self.ids.contains(&x) }
                fn sum(&self) -> u64 { let mut a = 0; for v in self.ids.iter() { a += v; } a }
            }
        "#;
        let got = run(src);
        assert_eq!(got, vec![("ND003".to_string(), 5)]);
    }

    #[test]
    fn ambiguous_method_name_not_propagated() {
        // Two types expose `.now()`; the untyped receiver must not pick up
        // taint from the wrong one.
        let src = r#"
            struct Wall { epoch: Instant }
            impl Wall { fn now(&self) -> u64 { self.epoch.elapsed().as_nanos() as u64 } }
            struct Sim { t: u64 }
            impl Sim { fn now(&self) -> u64 { self.t } }
            fn f(ctx: &mut Ctx, sim: &Sim) {
                ctx.count(sim.now());
                let anon = mystery();
                ctx.count(anon.now());
            }
        "#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn typed_receiver_propagates_taint() {
        let src = r#"
            struct Wall { epoch: Instant }
            impl Wall { fn now(&self) -> u64 { self.epoch.elapsed().as_nanos() as u64 } }
            fn f(ctx: &mut Ctx, w: &Wall) {
                ctx.count(w.now());
            }
        "#;
        let got = run(src);
        assert_eq!(got, vec![("ND001".to_string(), 5)]);
    }

    #[test]
    fn test_fns_are_exempt() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn t(ctx: &mut Ctx) { ctx.count(Instant::now().elapsed().as_nanos() as u64) }
            }
        "#;
        assert!(run(src).is_empty());
    }
}
