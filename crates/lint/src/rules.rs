//! The rule catalogue and the token-level checkers.
//!
//! Rules are grouped by what they protect (see `DESIGN.md`, "Static
//! analysis & determinism guarantees"):
//!
//! * `ND***` — no nondeterminism sources in sim-visible code. The DES is
//!   bit-deterministic (same seed ⇒ same event order ⇒ same trace); wall
//!   clocks, entropy-seeded RNGs, hash-order iteration and environment
//!   reads would all silently break that.
//! * `PI***` — protocol invariants: checked-width arithmetic in the NIC
//!   bit-vector bookkeeping, exhaustive `SpanEvent`/`Phase`/`CausalKind` matches in
//!   exporters, and no panicking calls on the NIC hot path.
//! * `LY***` — layering: substrate-independent crates must not depend on
//!   backend crates (checked from the crate graph, not source text).

#[cfg(test)]
use crate::lexer::lex;
use crate::lexer::{Tok, Token};
use crate::parser::{self, FileTree};

/// A single rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`ND001`...).
    pub rule: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

/// `(id, one-line description)` for every rule, in report order.
pub const CATALOGUE: &[(&str, &str)] = &[
    (
        "ND001",
        "wall-clock taint (Instant / SystemTime, propagated through calls) reaching a sim-visible sink",
    ),
    (
        "ND002",
        "entropy-seeded randomness (thread_rng / from_entropy / OsRng) anywhere",
    ),
    (
        "ND003",
        "hash-order iteration (HashMap/HashSet .iter()/.keys()/for-in) in sim-visible code",
    ),
    (
        "ND004",
        "std::env reads outside bench binaries (runs must not depend on the environment)",
    ),
    (
        "ND005",
        "threads/channels/atomics (thread::spawn, thread::scope, mpsc, Atomic*::new) outside the parallel engine (crates/sim/src/parallel.rs) and its SPSC queue (crates/sim/src/queue.rs)",
    ),
    (
        "PI001",
        "bare narrowing `as` cast in protocol bit-vector bookkeeping (use try_from)",
    ),
    (
        "PI002",
        "wildcard `_ =>` arm in a SpanEvent/Phase/CausalKind/ResKind match (new variants would be silently swallowed)",
    ),
    (
        "PI003",
        "panic!/unwrap/expect on the NIC hot path outside debug_assert",
    ),
    (
        "OB001",
        "ad-hoc println!/eprintln!/dbg! telemetry in crates/sim (route metrics through the telemetry registry)",
    ),
    (
        "PR001",
        "non-terminal catch-all arm in a protocol state-machine enum match (new transitions silently absorbed)",
    ),
    (
        "PR002",
        "original protocol send (retx: false, non-NACK) without a sent_payloads record in the same fn",
    ),
    (
        "PR003",
        "NicCollective::on_timer that can neither NACK, complete, nor delegate (stalls would never recover)",
    ),
    (
        "LY001",
        "layering: sim/net must not depend on backend crates (elan/gm/core/mpi/bench)",
    ),
];

/// Which rule families apply to a file (decided from its path, or forced
/// by fixture category in `--fixtures` mode).
#[derive(Clone, Copy, Debug, Default)]
pub struct Scope {
    /// ND001/ND002/ND004: sim-visible code (everything but bench binaries).
    pub nondet: bool,
    /// ND003 specifically (same scope as `nondet` in the real tree).
    pub hash_state: bool,
    /// ND005: no hand-rolled concurrency in sim-visible code. All worker
    /// threads belong to the rank-sharded parallel engine, whose merge
    /// discipline keeps the run deterministic; a stray `thread::spawn` or
    /// channel elsewhere reintroduces scheduling nondeterminism.
    pub threads: bool,
    /// ND005, atomics half: no `Atomic*::new` outside the SPSC mailbox
    /// implementation (`crates/sim/src/queue.rs`) and the parallel engine.
    /// A lone atomic is how ad-hoc cross-thread signalling starts; the
    /// engine's rings are the only audited lock-free protocol in the tree.
    pub atomics: bool,
    /// PI001: protocol bit-vector bookkeeping files.
    pub proto: bool,
    /// PI003: NIC hot-path files.
    pub hotpath: bool,
    /// PI002: applies everywhere source is scanned.
    pub exporter: bool,
    /// OB001: the engine crate (`crates/sim/`) must report through the
    /// typed telemetry registry, never by printing. A stray `println!` in
    /// the engine is invisible to the profiler's exporters, corrupts any
    /// harness that parses engine output, and (from a worker shard)
    /// interleaves nondeterministically.
    pub telemetry: bool,
}

impl Scope {
    /// The scope for a repo-relative path, or `None` if the file is not
    /// scanned at all (vendor, the lint crate itself).
    pub fn for_path(path: &str) -> Option<Scope> {
        if path.starts_with("vendor/") || path.starts_with("crates/lint/") {
            return None;
        }
        // Criterion bench targets (`crates/*/benches/`) are host-side
        // harnesses like the bench crate: they time wall clocks and spawn
        // producer threads on purpose, and never run inside the DES.
        let bench = path.starts_with("crates/bench/") || path.contains("/benches/");
        // The model checker is a host-side tool like bench (it may read
        // wall clocks for progress reporting and env for CI knobs), but
        // its exploration must still be reproducible, so hash-order
        // iteration rules stay on.
        let tool = bench || path.starts_with("crates/verify/");
        let proto = matches!(
            path,
            "crates/core/src/protocol.rs"
                | "crates/core/src/host_app.rs"
                | "crates/core/src/elan_thread.rs"
                | "crates/core/src/elan_chain.rs"
        );
        let hotpath = matches!(path, "crates/gm/src/nic.rs" | "crates/elan/src/nic.rs");
        // The parallel engine owns all worker threads; the algos crate is
        // the *real-threads* shared-memory reference harness (its whole
        // point is concurrency and it never runs inside the DES).
        let threads =
            !bench && path != "crates/sim/src/parallel.rs" && !path.starts_with("crates/algos/");
        Some(Scope {
            nondet: !tool,
            hash_state: !bench,
            threads,
            // queue.rs owns the SPSC ring's acquire/release pair — the one
            // place hand-written atomics are the point, not a smell.
            atomics: threads && path != "crates/sim/src/queue.rs",
            proto,
            hotpath,
            exporter: true,
            telemetry: path.starts_with("crates/sim/"),
        })
    }
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// `a :: b` starting at `i` (where `a` is already matched at `i`).
fn path_seg(toks: &[Token], i: usize, next: &str) -> bool {
    punct_at(toks, i + 1, ':') && punct_at(toks, i + 2, ':') && ident_at(toks, i + 3) == Some(next)
}

/// Token index ranges covered by `#[cfg(test)] mod ... { ... }` blocks and
/// by `debug_assert*!(...)` argument lists — excluded from PI003.
fn excluded_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // #[cfg(test)]
        if punct_at(toks, i, '#')
            && punct_at(toks, i + 1, '[')
            && ident_at(toks, i + 2) == Some("cfg")
            && punct_at(toks, i + 3, '(')
            && ident_at(toks, i + 4) == Some("test")
            && punct_at(toks, i + 5, ')')
            && punct_at(toks, i + 6, ']')
        {
            // Skip any further attributes, then expect an item; find its
            // opening brace and the matching close.
            let mut j = i + 7;
            while punct_at(toks, j, '#') {
                // skip a whole #[...] group
                let mut depth = 0usize;
                j += 1; // at '['
                loop {
                    match toks.get(j).map(|t| &t.tok) {
                        Some(Tok::Punct('[')) => depth += 1,
                        Some(Tok::Punct(']')) => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        None => break,
                        _ => {}
                    }
                    j += 1;
                }
            }
            // Find the item's opening '{' (skipping e.g. `mod tests`).
            while j < toks.len() && !punct_at(toks, j, '{') {
                j += 1;
            }
            let start = j;
            let mut depth = 0usize;
            while j < toks.len() {
                if punct_at(toks, j, '{') {
                    depth += 1;
                } else if punct_at(toks, j, '}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            ranges.push((start, j));
            i = j + 1;
            continue;
        }
        // debug_assert! / debug_assert_eq! / debug_assert_ne! ( ... )
        if let Some(name) = ident_at(toks, i) {
            if name.starts_with("debug_assert") && punct_at(toks, i + 1, '!') {
                let mut j = i + 2; // at '(' (or '[' / '{', all legal)
                let (open, close) = match toks.get(j).map(|t| &t.tok) {
                    Some(Tok::Punct('(')) => ('(', ')'),
                    Some(Tok::Punct('[')) => ('[', ']'),
                    Some(Tok::Punct('{')) => ('{', '}'),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let start = j;
                let mut depth = 0usize;
                while j < toks.len() {
                    if punct_at(toks, j, open) {
                        depth += 1;
                    } else if punct_at(toks, j, close) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                ranges.push((start, j));
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(a, b)| i >= a && i <= b)
}

/// Scan one file's source under `scope`; `path` is used only for
/// reporting. Parses the file and runs the token-level rules; the
/// flow-sensitive ND rules live in [`crate::flow`] and run over the whole
/// workspace at once.
#[cfg(test)]
pub fn scan_source(path: &str, src: &str, scope: Scope) -> Vec<Finding> {
    scan_file(&parser::parse(path, lex(src)), scope)
}

/// Token-level rules over one parsed file.
pub fn scan_file(tree: &FileTree, scope: Scope) -> Vec<Finding> {
    let path = tree.path.as_str();
    let toks = &tree.toks;
    let mut out = Vec::new();
    let push = |out: &mut Vec<Finding>, rule: &'static str, line: u32, message: String| {
        out.push(Finding {
            rule,
            path: path.to_string(),
            line,
            message,
        });
    };

    // PI003 and OB001 both exempt `#[cfg(test)]` blocks (tests may panic
    // and may print).
    let excluded = if scope.hotpath || scope.telemetry {
        excluded_ranges(toks)
    } else {
        Vec::new()
    };
    // Terminal dispatch arms — a catch-all match arm whose whole body is a
    // `panic!`/`unreachable!` — are the idiomatic "this transition is
    // impossible" dead end. PI003 exempts them: the panic *is* the audited
    // terminal state, and PR001 independently checks it stays terminal.
    let terminal = if scope.hotpath {
        terminal_arm_ranges(toks)
    } else {
        Vec::new()
    };

    for i in 0..toks.len() {
        let line = toks[i].line;
        let Some(ident) = ident_at(toks, i) else {
            continue;
        };
        // --- ND002: entropy randomness ----------------------------------
        if scope.nondet && matches!(ident, "thread_rng" | "from_entropy" | "OsRng") {
            push(&mut out, "ND002", line, format!("use of {ident}"));
        }
        // --- ND004: environment reads -----------------------------------
        if scope.nondet {
            if ident == "std" && path_seg(toks, i, "env") {
                push(&mut out, "ND004", line, "use of std::env".to_string());
            } else if ident == "env"
                && punct_at(toks, i + 1, ':')
                && punct_at(toks, i + 2, ':')
                && matches!(
                    ident_at(toks, i + 3),
                    Some("var" | "vars" | "var_os" | "args" | "args_os")
                )
            {
                push(&mut out, "ND004", line, "environment read".to_string());
            }
        }
        // --- ND005: threads/channels outside the parallel engine --------
        if scope.threads {
            if ident == "thread" && (path_seg(toks, i, "spawn") || path_seg(toks, i, "scope")) {
                let what = ident_at(toks, i + 3).unwrap_or_default();
                push(
                    &mut out,
                    "ND005",
                    line,
                    format!("thread::{what} outside crates/sim/src/parallel.rs"),
                );
            }
            if ident == "mpsc" {
                push(
                    &mut out,
                    "ND005",
                    line,
                    "mpsc channel outside crates/sim/src/parallel.rs".to_string(),
                );
            }
        }
        // ND005, atomics half: constructing an atomic outside the SPSC
        // ring/engine. Only `Atomic*::new` is flagged — *using* a handle
        // someone else constructed is the constructor's problem.
        if scope.atomics
            && matches!(
                ident,
                "AtomicBool"
                    | "AtomicU8"
                    | "AtomicU16"
                    | "AtomicU32"
                    | "AtomicU64"
                    | "AtomicUsize"
                    | "AtomicI8"
                    | "AtomicI16"
                    | "AtomicI32"
                    | "AtomicI64"
                    | "AtomicIsize"
                    | "AtomicPtr"
            )
            && path_seg(toks, i, "new")
        {
            push(
                &mut out,
                "ND005",
                line,
                format!("{ident}::new outside the SPSC queue / parallel engine"),
            );
        }
        // --- PI001: narrowing casts -------------------------------------
        if scope.proto
            && ident == "as"
            && matches!(
                ident_at(toks, i + 1),
                Some("u8" | "u16" | "u32" | "i8" | "i16" | "i32")
            )
        {
            push(
                &mut out,
                "PI001",
                line,
                format!(
                    "bare `as {}` narrowing cast in bookkeeping path (use try_from)",
                    ident_at(toks, i + 1).unwrap_or_default()
                ),
            );
        }
        // --- PI003: hot-path panics -------------------------------------
        if scope.hotpath && !in_ranges(&excluded, i) && !in_ranges(&terminal, i) {
            if ident == "panic" && punct_at(toks, i + 1, '!') {
                push(
                    &mut out,
                    "PI003",
                    line,
                    "panic! on the NIC hot path".to_string(),
                );
            }
            if matches!(ident, "unwrap" | "expect") && i > 0 && punct_at(toks, i - 1, '.') {
                push(
                    &mut out,
                    "PI003",
                    line,
                    format!(".{ident}() on the NIC hot path"),
                );
            }
        }
        // --- OB001: ad-hoc print telemetry in the engine crate ----------
        if scope.telemetry
            && !in_ranges(&excluded, i)
            && matches!(ident, "println" | "eprintln" | "print" | "eprint" | "dbg")
            && punct_at(toks, i + 1, '!')
        {
            push(
                &mut out,
                "OB001",
                line,
                format!("{ident}! in crates/sim (route telemetry through the metrics registry)"),
            );
        }
        // --- PI002: wildcard arms in SpanEvent/Phase/CausalKind/ResKind
        // matches ---------------------------------------------------------
        if scope.exporter && ident == "match" {
            scan_match(toks, i, path, &mut out);
        }
    }
    // --- PR***: protocol reachability (per-fn, needs the item tree) -----
    if scope.proto || scope.hotpath {
        scan_protocol_reachability(tree, scope, &mut out);
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Enums whose matches are NIC state-machine transition dispatch. A
/// catch-all arm over one of these absorbs future transitions silently —
/// unless it is *terminal* (its whole body is a `panic!`/`unreachable!`),
/// which declares the transition impossible and fails loudly instead.
const PROTO_ENUMS: &[&str] = &[
    "CollKind",
    "CollAction",
    "GroupOp",
    "EventAction",
    "GmEvent",
    "ElanEvent",
    "ThreadAction",
    "ThreadOp",
    "ElanPayload",
    "PacketKind",
];

/// Token ranges of catch-all+terminal match-arm bodies (PI003 exemption).
fn terminal_arm_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    for i in 0..toks.len() {
        if ident_at(toks, i) != Some("match") {
            continue;
        }
        for arm in parser::match_arms(toks, i) {
            if parser::is_catch_all_pattern(toks, &arm) && parser::is_terminal_body(toks, &arm) {
                ranges.push(arm.body);
            }
        }
    }
    ranges
}

/// PR001/PR002/PR003 over the parsed item tree (skips `#[cfg(test)]`).
fn scan_protocol_reachability(tree: &FileTree, scope: Scope, out: &mut Vec<Finding>) {
    let toks = &tree.toks;
    for f in &tree.fns {
        if f.in_test {
            continue;
        }
        let Some((blo, bhi)) = f.body else {
            continue;
        };
        // --- PR001: catch-all arms in protocol enum matches -------------
        for i in blo..=bhi {
            if ident_at(toks, i) != Some("match") {
                continue;
            }
            let arms = parser::match_arms(toks, i);
            let is_protocol = arms.iter().any(|arm| {
                (arm.pat.0..arm.pat.1).any(|j| {
                    matches!(ident_at(toks, j), Some(name) if PROTO_ENUMS.contains(&name))
                        && punct_at(toks, j + 1, ':')
                        && punct_at(toks, j + 2, ':')
                })
            });
            if !is_protocol {
                continue;
            }
            for arm in &arms {
                if parser::is_catch_all_pattern(toks, arm) && !parser::is_terminal_body(toks, arm) {
                    out.push(Finding {
                        rule: "PR001",
                        path: tree.path.clone(),
                        line: toks[arm.pat.0].line,
                        message: "catch-all arm in a protocol enum match silently absorbs new \
                                  transitions (enumerate them, or make the arm terminal with panic!/unreachable!)"
                            .to_string(),
                    });
                }
            }
        }
        // PR002/PR003 are about the *collective* protocol; the hotpath NIC
        // wire layer only forwards CollActions it was handed.
        if !scope.proto {
            continue;
        }
        // --- PR002: original send must be recorded for NACK service -----
        let has_payload_record = (blo..=bhi).any(|i| {
            ident_at(toks, i) == Some("sent_payloads")
                && (i + 1..(i + 7).min(bhi + 1))
                    .any(|j| punct_at(toks, j, '=') && !punct_at(toks, j + 1, '='))
        });
        for i in blo..=bhi {
            if ident_at(toks, i) != Some("CollAction")
                || !punct_at(toks, i + 1, ':')
                || !punct_at(toks, i + 2, ':')
                || ident_at(toks, i + 3) != Some("Send")
                || !punct_at(toks, i + 4, '{')
            {
                continue;
            }
            let close = {
                let mut depth = 0isize;
                let mut j = i + 4;
                loop {
                    if j > bhi {
                        break bhi;
                    }
                    if punct_at(toks, j, '{') {
                        depth += 1;
                    } else if punct_at(toks, j, '}') {
                        depth -= 1;
                        if depth == 0 {
                            break j;
                        }
                    }
                    j += 1;
                }
            };
            let retx_false = (i + 4..close).any(|j| {
                ident_at(toks, j) == Some("retx")
                    && punct_at(toks, j + 1, ':')
                    && ident_at(toks, j + 2) == Some("false")
            });
            let literal_nack = (i + 4..close).any(|j| ident_at(toks, j) == Some("Nack"));
            if retx_false && !literal_nack && !has_payload_record {
                out.push(Finding {
                    rule: "PR002",
                    path: tree.path.clone(),
                    line: toks[i].line,
                    message: "original protocol send (retx: false) without a sent_payloads \
                              record in this fn — a NACK for this round could never be served"
                        .to_string(),
                });
            }
        }
        // --- PR003: on_timer must be able to recover a stall ------------
        if f.name == "on_timer" && f.trait_of.as_deref() == Some("NicCollective") {
            let can_recover = (blo..=bhi).any(|i| {
                matches!(ident_at(toks, i), Some("Nack" | "completed" | "HostDone"))
                    || (ident_at(toks, i) == Some("on_timer") && punct_at(toks, i - 1, '.'))
            });
            if !can_recover {
                out.push(Finding {
                    rule: "PR003",
                    path: tree.path.clone(),
                    line: f.line,
                    message: "NicCollective::on_timer never schedules a NACK, reaches \
                              completion, or delegates — a lost packet would stall forever"
                        .to_string(),
                });
            }
        }
    }
}

/// Inspect one `match` whose keyword sits at `kw`: if its arm *patterns*
/// name `SpanEvent::`, `Phase::` or `CausalKind::` and an arm-level `_ =>` (or
/// `_ if ... =>`) exists, flag it.
///
/// Only pattern positions count: a match over some other type whose arm
/// *bodies* construct or emit span events (common in tests and drivers) is
/// not an exporter and must not be flagged. Pattern position is tracked
/// with a small state machine: everything from the body's `{` (or from an
/// arm-ending `,` / block close back to depth 1) up to the next `=>` is
/// pattern + guard; everything after `=>` is body.
fn scan_match(toks: &[Token], kw: usize, path: &str, out: &mut Vec<Finding>) {
    // Find the body's opening brace: the first '{' at bracket/paren depth 0
    // after the scrutinee expression.
    let mut i = kw + 1;
    let mut depth = 0isize;
    let body_open = loop {
        match toks.get(i).map(|t| &t.tok) {
            None => return,
            Some(Tok::Punct('(' | '[')) => depth += 1,
            Some(Tok::Punct(')' | ']')) => depth -= 1,
            Some(Tok::Punct('{')) if depth == 0 => break i,
            _ => {}
        }
        i += 1;
    };
    // Walk the body, tracking brace depth (relative: body '{' = 1) and
    // paren/bracket depth within it.
    let mut brace = 0isize;
    let mut inner = 0isize;
    let mut in_pattern = true;
    let mut span_in_pattern = false;
    let mut wildcard_at: Option<u32> = None;
    let mut i = body_open;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => brace += 1,
            Tok::Punct('}') => {
                brace -= 1;
                if brace == 0 {
                    break;
                }
                // A `{ ... }` arm body closing back to depth 1 ends the
                // arm; the next tokens are the next arm's pattern.
                if brace == 1 && inner == 0 {
                    in_pattern = true;
                }
            }
            Tok::Punct('(' | '[') => inner += 1,
            Tok::Punct(')' | ']') => inner -= 1,
            Tok::Punct('=')
                if brace == 1 && inner == 0 && in_pattern && punct_at(toks, i + 1, '>') =>
            {
                in_pattern = false;
                i += 1; // skip the '>'
            }
            Tok::Punct(',') if brace == 1 && inner == 0 => in_pattern = true,
            // Any inner depth: tuple patterns like `(SpanEvent::X, _)`
            // still make this an exporter match.
            Tok::Ident(s)
                if (s == "SpanEvent" || s == "Phase" || s == "CausalKind" || s == "ResKind")
                    && punct_at(toks, i + 1, ':')
                    && in_pattern
                    && brace >= 1 =>
            {
                span_in_pattern = true;
            }
            // `_` lexes as an identifier. An arm-level wildcard sits in
            // pattern position at brace depth 1 / bracket depth 0 and is
            // followed by `=>` or a guard `if`.
            Tok::Ident(s)
                if s == "_"
                    && in_pattern
                    && brace == 1
                    && inner == 0
                    && wildcard_at.is_none()
                    && (ident_at(toks, i + 1) == Some("if")
                        || (punct_at(toks, i + 1, '=') && punct_at(toks, i + 2, '>'))) =>
            {
                wildcard_at = Some(toks[i].line);
            }
            _ => {}
        }
        i += 1;
    }
    if span_in_pattern {
        if let Some(line) = wildcard_at {
            out.push(Finding {
                rule: "PI002",
                path: path.to_string(),
                line,
                message: "wildcard `_ =>` arm in a match over SpanEvent/Phase/CausalKind/ResKind"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope_all() -> Scope {
        Scope {
            nondet: true,
            hash_state: true,
            threads: true,
            atomics: true,
            proto: true,
            hotpath: true,
            exporter: true,
            telemetry: true,
        }
    }

    fn rules_of(src: &str, scope: Scope) -> Vec<&'static str> {
        scan_source("t.rs", src, scope)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn hash_declarations_no_longer_flagged_at_token_level() {
        // Declaration/insert/lookup are deterministic; only *iteration*
        // is a hazard, and that is the flow analysis's job (crate::flow).
        let src = r#"
            use std::collections::HashMap;
            fn f() { let m: HashMap<u32, u32> = HashMap::new(); }
        "#;
        assert!(rules_of(src, scope_all()).is_empty());
    }

    #[test]
    fn env_flagged_but_bare_instant_is_not() {
        // ND001 moved to the flow analysis (reported at the sink, not the
        // keyword); ND004 stays keyword-level — an env read is nondeterministic
        // no matter where the value goes.
        let src = "fn f() { let t = std::time::Instant::now(); let v = std::env::var(\"X\"); }";
        let rules = rules_of(src, scope_all());
        assert!(!rules.contains(&"ND001"));
        assert!(rules.contains(&"ND004"));
    }

    #[test]
    fn threads_and_channels_flagged() {
        let src = r#"
            let h = std::thread::spawn(|| {});
            std::thread::scope(|s| {});
            let (tx, rx) = std::sync::mpsc::channel::<u32>();
            // thread::spawn in a comment is fine
            let s = "thread::spawn in a string is fine";
        "#;
        let rules = rules_of(src, scope_all());
        assert_eq!(rules.iter().filter(|r| **r == "ND005").count(), 3);
        // Out of scope (the parallel engine itself, the algos harness,
        // bench binaries): nothing flagged.
        let exempt = Scope {
            threads: false,
            ..scope_all()
        };
        assert!(rules_of(src, exempt).iter().all(|r| *r != "ND005"));
        // `available_parallelism` and thread-local storage are not
        // concurrency primitives and stay legal everywhere.
        let benign = "let n = std::thread::available_parallelism();";
        assert!(rules_of(benign, scope_all()).is_empty());
    }

    #[test]
    fn atomic_construction_flagged_only_in_atomics_scope() {
        let src = r#"
            static FLAG: AtomicBool = AtomicBool::new(false);
            let n = AtomicU64::new(0);
            let p = std::sync::atomic::AtomicUsize::new(7);
            // AtomicU32::new in a comment is fine
            let s = "AtomicU32::new in a string is fine";
        "#;
        let rules = rules_of(src, scope_all());
        assert_eq!(rules.iter().filter(|r| **r == "ND005").count(), 3);
        // The SPSC queue keeps `threads` scope (its tests may not spawn
        // ad hoc) but drops `atomics` — constructing rings is its job.
        let queue_scope = Scope {
            atomics: false,
            ..scope_all()
        };
        assert!(rules_of(src, queue_scope).iter().all(|r| *r != "ND005"));
        // Loading/storing through a reference is not construction.
        let benign = "fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        assert!(rules_of(benign, scope_all()).is_empty());
    }

    #[test]
    fn narrowing_cast_flagged_but_widening_not() {
        let src = "let a = x as u16; let b = y as u64; let c = z as usize;";
        let rules = rules_of(src, scope_all());
        assert_eq!(rules.iter().filter(|r| **r == "PI001").count(), 1);
    }

    #[test]
    fn hot_path_panic_flagged_outside_tests_and_debug_assert() {
        let src = r#"
            fn hot(x: Option<u32>) -> u32 {
                debug_assert!(x.clone().unwrap() > 0);
                x.unwrap()
            }
            #[cfg(test)]
            mod tests {
                fn t(x: Option<u32>) { x.unwrap(); panic!("boom"); }
            }
        "#;
        let rules = rules_of(src, scope_all());
        assert_eq!(rules.iter().filter(|r| **r == "PI003").count(), 1);
    }

    #[test]
    fn span_event_wildcard_match_flagged() {
        let flagged = r#"
            fn f(e: &SpanEvent) -> u32 {
                match e {
                    SpanEvent::Fire { .. } => 1,
                    _ => 0,
                }
            }
        "#;
        assert_eq!(rules_of(flagged, scope_all()), vec!["PI002"]);
        let exhaustive = r#"
            fn f(e: &SpanEvent) -> u32 {
                match e {
                    SpanEvent::Fire { .. } => 1,
                    SpanEvent::Wire { .. } => 2,
                }
            }
        "#;
        assert!(rules_of(exhaustive, scope_all()).is_empty());
        let unrelated = r#"
            fn f(x: u32) -> u32 {
                match x {
                    0 => 1,
                    _ => 0,
                }
            }
        "#;
        assert!(rules_of(unrelated, scope_all()).is_empty());
    }

    #[test]
    fn causal_kind_wildcard_match_flagged() {
        let flagged = r#"
            fn f(k: CausalKind) -> &'static str {
                match k {
                    CausalKind::Wire => "wire",
                    _ => "other",
                }
            }
        "#;
        assert_eq!(rules_of(flagged, scope_all()), vec!["PI002"]);
        let exhaustive = r#"
            fn f(k: CausalKind) -> u32 {
                match k {
                    CausalKind::Wire => 1,
                    CausalKind::Nack => 2,
                }
            }
        "#;
        assert!(rules_of(exhaustive, scope_all()).is_empty());
    }

    #[test]
    fn nested_unrelated_match_inside_span_match_is_clean() {
        let src = r#"
            fn f(e: &SpanEvent, x: u32) -> u32 {
                match e {
                    SpanEvent::Fire { .. } => match x {
                        0 => 1,
                        _ => 0,
                    },
                    SpanEvent::Wire { .. } => 2,
                }
            }
        "#;
        // The inner wildcard is at brace depth 2 of the outer match, and the
        // inner match body has no SpanEvent:: patterns.
        assert!(rules_of(src, scope_all()).is_empty());
    }

    #[test]
    fn span_events_in_arm_bodies_do_not_make_a_match_an_exporter() {
        // A match over `Msg` that *emits* spans in its bodies is not an
        // exporter: the wildcard is fine.
        let src = r#"
            fn f(msg: Msg, ctx: &mut Ctx) {
                match msg {
                    Msg::Tick(0) => {
                        ctx.span(SpanEvent::OpBegin { group: 7, seq: 0 });
                    }
                    Msg::Tick(1) => ctx.span(SpanEvent::Fire { unit: 0, dst: 1 }),
                    _ => unreachable!(),
                }
            }
        "#;
        assert!(rules_of(src, scope_all()).is_empty());
    }

    #[test]
    fn tuple_pattern_full_wildcard_is_flagged_but_positional_is_not() {
        let flagged = r#"
            fn f(e: &SpanEvent, x: u32) -> u32 {
                match (e, x) {
                    (SpanEvent::Fire { .. }, _) => 1,
                    _ => 0,
                }
            }
        "#;
        assert_eq!(rules_of(flagged, scope_all()), vec!["PI002"]);
        let positional = r#"
            fn f(e: &SpanEvent, x: u32) -> u32 {
                match (e, x) {
                    (SpanEvent::Fire { .. }, _) => 1,
                    (SpanEvent::Wire { .. }, n) => n,
                }
            }
        "#;
        assert!(rules_of(positional, scope_all()).is_empty());
    }

    #[test]
    fn print_telemetry_flagged_outside_tests() {
        let src = r#"
            fn report(n: u64) {
                println!("events: {n}");
                eprintln!("warning");
                dbg!(n);
                // println! in a comment is fine
                let s = "println! in a string is fine";
            }
            #[cfg(test)]
            mod tests {
                fn t() { println!("tests may print"); }
            }
        "#;
        let rules = rules_of(src, scope_all());
        assert_eq!(rules.iter().filter(|r| **r == "OB001").count(), 3);
        // Out of scope (bench binaries, other crates): nothing flagged.
        let exempt = Scope {
            telemetry: false,
            ..scope_all()
        };
        assert!(rules_of(src, exempt).iter().all(|r| *r != "OB001"));
        // `writeln!` into a buffer is rendering, not telemetry.
        let benign = "use std::fmt::Write; fn f(out: &mut String) { writeln!(out, \"x\").ok(); }";
        assert!(rules_of(benign, scope_all()).iter().all(|r| *r != "OB001"));
    }

    #[test]
    fn scope_gates_rules() {
        let src = "fn f() { let a = x as u16; let v = std::env::var(\"X\"); }";
        let none = Scope::default();
        assert!(scan_source("t.rs", src, none).is_empty());
        let nd_only = Scope {
            nondet: true,
            ..Scope::default()
        };
        // `std::env::var` trips both the `std::env` and the `env::var`
        // patterns — two findings, same line.
        assert_eq!(rules_of(src, nd_only), vec!["ND004", "ND004"]);
        let proto_only = Scope {
            proto: true,
            ..Scope::default()
        };
        assert_eq!(rules_of(src, proto_only), vec!["PI001"]);
    }

    #[test]
    fn terminal_dispatch_arm_panic_is_exempt_from_pi003() {
        // The idiomatic `other => panic!("unexpected event")` dead end on
        // the NIC dispatch match is the audited terminal state.
        let src = r#"
            fn handle(&mut self, msg: GmEvent) {
                match msg {
                    GmEvent::Inject(p) => self.inject(p),
                    other => panic!("NIC got unexpected event {other:?}"),
                }
            }
        "#;
        assert!(rules_of(src, scope_all()).iter().all(|r| *r != "PI003"));
        // A panic! in a non-catch-all arm (or outside a match) still fires.
        let src = r#"
            fn handle(&mut self, msg: GmEvent) {
                match msg {
                    GmEvent::Inject(p) => panic!("cannot inject"),
                    other => panic!("NIC got unexpected event {other:?}"),
                }
            }
        "#;
        assert_eq!(
            rules_of(src, scope_all())
                .iter()
                .filter(|r| **r == "PI003")
                .count(),
            1
        );
    }

    #[test]
    fn pr001_catch_all_in_protocol_match() {
        // Non-terminal catch-all over a protocol enum: flagged.
        let src = r#"
            fn label(k: &CollKind) -> u32 {
                match k {
                    CollKind::Nack => 1,
                    _ => 0,
                }
            }
        "#;
        assert_eq!(
            rules_of(src, scope_all())
                .iter()
                .filter(|r| **r == "PR001")
                .count(),
            1
        );
        // Terminal catch-all: the transition is declared impossible — ok.
        let src = r#"
            fn apply(op: GroupOp, payload: CollKind) {
                match (op, payload) {
                    (GroupOp::Barrier, CollKind::Barrier) => {}
                    (op, payload) => panic!("payload {payload:?} does not match {op:?}"),
                }
            }
        "#;
        assert!(rules_of(src, scope_all()).iter().all(|r| *r != "PR001"));
        // Catch-all over a non-protocol enum: none of PR001's business.
        let src = r#"
            fn f(x: u32) -> u32 {
                match x {
                    0 => 1,
                    _ => 0,
                }
            }
        "#;
        assert!(rules_of(src, scope_all()).iter().all(|r| *r != "PR001"));
    }

    #[test]
    fn pr002_send_without_payload_record() {
        let proto = Scope {
            proto: true,
            ..Scope::default()
        };
        // retx: false, non-NACK, no sent_payloads assignment → flagged.
        let bad = r#"
            fn emit(&mut self, actions: &mut ActionBuf) {
                actions.push(CollAction::Send { dst, pkt, retx: false, cause });
            }
        "#;
        assert_eq!(rules_of(bad, proto), vec!["PR002"]);
        // Same send with the record in the same fn → clean.
        let good = r#"
            fn emit(&mut self, actions: &mut ActionBuf) {
                live.sent_payloads[r] = payload.clone();
                actions.push(CollAction::Send { dst, pkt, retx: false, cause });
            }
        "#;
        assert!(rules_of(good, proto).is_empty());
        // Retransmissions and NACKs are served from the record, not into it.
        let retx = r#"
            fn serve(&mut self, actions: &mut ActionBuf) {
                actions.push(CollAction::Send { dst, pkt, retx: true, cause });
            }
            fn nack(&mut self, actions: &mut ActionBuf) {
                actions.push(CollAction::Send {
                    dst,
                    pkt: CollPacket { src, group, epoch, round, kind: CollKind::Nack },
                    retx: false,
                    cause,
                });
            }
        "#;
        assert!(rules_of(retx, proto).is_empty());
    }

    #[test]
    fn pr003_on_timer_must_recover() {
        let proto = Scope {
            proto: true,
            ..Scope::default()
        };
        // An on_timer that only updates bookkeeping can never recover a
        // lost packet.
        let bad = r#"
            impl NicCollective for Stuck {
                fn on_timer(&mut self, now: SimTime, actions: &mut ActionBuf) {
                    self.ticks += 1;
                }
            }
        "#;
        assert_eq!(rules_of(bad, proto), vec!["PR003"]);
        // NACK construction, completion reference, or delegation: fine.
        let good = r#"
            impl NicCollective for Paper {
                fn on_timer(&mut self, now: SimTime, actions: &mut ActionBuf) {
                    actions.push(CollAction::Send { dst, pkt: nack_pkt(CollKind::Nack), retx: false, cause });
                }
            }
            impl NicCollective for Wrapper {
                fn on_timer(&mut self, now: SimTime, actions: &mut ActionBuf) {
                    self.inner.on_timer(now, actions);
                }
            }
        "#;
        assert!(rules_of(good, proto).iter().all(|r| *r != "PR003"));
        // on_timer fns NOT implementing NicCollective (host apps, drivers)
        // are out of scope.
        let unrelated = r#"
            impl HostApp {
                fn on_timer(&mut self, now: SimTime) { self.ticks += 1; }
            }
        "#;
        assert!(rules_of(unrelated, proto).is_empty());
    }
}
