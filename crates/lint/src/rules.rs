//! The rule catalogue and the token-level checkers.
//!
//! Rules are grouped by what they protect (see `DESIGN.md`, "Static
//! analysis & determinism guarantees"):
//!
//! * `ND***` — no nondeterminism sources in sim-visible code. The DES is
//!   bit-deterministic (same seed ⇒ same event order ⇒ same trace); wall
//!   clocks, entropy-seeded RNGs, hash-order iteration and environment
//!   reads would all silently break that.
//! * `PI***` — protocol invariants: checked-width arithmetic in the NIC
//!   bit-vector bookkeeping, exhaustive `SpanEvent`/`Phase`/`CausalKind` matches in
//!   exporters, and no panicking calls on the NIC hot path.
//! * `LY***` — layering: substrate-independent crates must not depend on
//!   backend crates (checked from the crate graph, not source text).

use crate::lexer::{lex, Tok, Token};

/// A single rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`ND001`...).
    pub rule: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

/// `(id, one-line description)` for every rule, in report order.
pub const CATALOGUE: &[(&str, &str)] = &[
    (
        "ND001",
        "wall-clock time (std::time / Instant / SystemTime) in sim-visible code",
    ),
    (
        "ND002",
        "entropy-seeded randomness (thread_rng / from_entropy / OsRng) anywhere",
    ),
    (
        "ND003",
        "HashMap/HashSet in sim-visible state (iteration order can reach event order)",
    ),
    (
        "ND004",
        "std::env reads outside bench binaries (runs must not depend on the environment)",
    ),
    (
        "ND005",
        "threads/channels (thread::spawn, thread::scope, mpsc) outside the parallel engine (crates/sim/src/parallel.rs)",
    ),
    (
        "PI001",
        "bare narrowing `as` cast in protocol bit-vector bookkeeping (use try_from)",
    ),
    (
        "PI002",
        "wildcard `_ =>` arm in a SpanEvent/Phase/CausalKind match (new variants would be silently swallowed)",
    ),
    (
        "PI003",
        "panic!/unwrap/expect on the NIC hot path outside debug_assert",
    ),
    (
        "OB001",
        "ad-hoc println!/eprintln!/dbg! telemetry in crates/sim (route metrics through the telemetry registry)",
    ),
    (
        "LY001",
        "layering: sim/net must not depend on backend crates (elan/gm/core/mpi/bench)",
    ),
];

/// Which rule families apply to a file (decided from its path, or forced
/// by fixture category in `--fixtures` mode).
#[derive(Clone, Copy, Debug, Default)]
pub struct Scope {
    /// ND001/ND002/ND004: sim-visible code (everything but bench binaries).
    pub nondet: bool,
    /// ND003 specifically (same scope as `nondet` in the real tree).
    pub hash_state: bool,
    /// ND005: no hand-rolled concurrency in sim-visible code. All worker
    /// threads belong to the rank-sharded parallel engine, whose merge
    /// discipline keeps the run deterministic; a stray `thread::spawn` or
    /// channel elsewhere reintroduces scheduling nondeterminism.
    pub threads: bool,
    /// PI001: protocol bit-vector bookkeeping files.
    pub proto: bool,
    /// PI003: NIC hot-path files.
    pub hotpath: bool,
    /// PI002: applies everywhere source is scanned.
    pub exporter: bool,
    /// OB001: the engine crate (`crates/sim/`) must report through the
    /// typed telemetry registry, never by printing. A stray `println!` in
    /// the engine is invisible to the profiler's exporters, corrupts any
    /// harness that parses engine output, and (from a worker shard)
    /// interleaves nondeterministically.
    pub telemetry: bool,
}

impl Scope {
    /// The scope for a repo-relative path, or `None` if the file is not
    /// scanned at all (vendor, the lint crate itself).
    pub fn for_path(path: &str) -> Option<Scope> {
        if path.starts_with("vendor/") || path.starts_with("crates/lint/") {
            return None;
        }
        let bench = path.starts_with("crates/bench/");
        let proto = matches!(
            path,
            "crates/core/src/protocol.rs"
                | "crates/core/src/host_app.rs"
                | "crates/core/src/elan_thread.rs"
                | "crates/core/src/elan_chain.rs"
        );
        let hotpath = matches!(path, "crates/gm/src/nic.rs" | "crates/elan/src/nic.rs");
        // The parallel engine owns all worker threads; the algos crate is
        // the *real-threads* shared-memory reference harness (its whole
        // point is concurrency and it never runs inside the DES).
        let threads =
            !bench && path != "crates/sim/src/parallel.rs" && !path.starts_with("crates/algos/");
        Some(Scope {
            nondet: !bench,
            hash_state: !bench,
            threads,
            proto,
            hotpath,
            exporter: true,
            telemetry: path.starts_with("crates/sim/"),
        })
    }
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// `a :: b` starting at `i` (where `a` is already matched at `i`).
fn path_seg(toks: &[Token], i: usize, next: &str) -> bool {
    punct_at(toks, i + 1, ':') && punct_at(toks, i + 2, ':') && ident_at(toks, i + 3) == Some(next)
}

/// Token index ranges covered by `#[cfg(test)] mod ... { ... }` blocks and
/// by `debug_assert*!(...)` argument lists — excluded from PI003.
fn excluded_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // #[cfg(test)]
        if punct_at(toks, i, '#')
            && punct_at(toks, i + 1, '[')
            && ident_at(toks, i + 2) == Some("cfg")
            && punct_at(toks, i + 3, '(')
            && ident_at(toks, i + 4) == Some("test")
            && punct_at(toks, i + 5, ')')
            && punct_at(toks, i + 6, ']')
        {
            // Skip any further attributes, then expect an item; find its
            // opening brace and the matching close.
            let mut j = i + 7;
            while punct_at(toks, j, '#') {
                // skip a whole #[...] group
                let mut depth = 0usize;
                j += 1; // at '['
                loop {
                    match toks.get(j).map(|t| &t.tok) {
                        Some(Tok::Punct('[')) => depth += 1,
                        Some(Tok::Punct(']')) => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        None => break,
                        _ => {}
                    }
                    j += 1;
                }
            }
            // Find the item's opening '{' (skipping e.g. `mod tests`).
            while j < toks.len() && !punct_at(toks, j, '{') {
                j += 1;
            }
            let start = j;
            let mut depth = 0usize;
            while j < toks.len() {
                if punct_at(toks, j, '{') {
                    depth += 1;
                } else if punct_at(toks, j, '}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            ranges.push((start, j));
            i = j + 1;
            continue;
        }
        // debug_assert! / debug_assert_eq! / debug_assert_ne! ( ... )
        if let Some(name) = ident_at(toks, i) {
            if name.starts_with("debug_assert") && punct_at(toks, i + 1, '!') {
                let mut j = i + 2; // at '(' (or '[' / '{', all legal)
                let (open, close) = match toks.get(j).map(|t| &t.tok) {
                    Some(Tok::Punct('(')) => ('(', ')'),
                    Some(Tok::Punct('[')) => ('[', ']'),
                    Some(Tok::Punct('{')) => ('{', '}'),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let start = j;
                let mut depth = 0usize;
                while j < toks.len() {
                    if punct_at(toks, j, open) {
                        depth += 1;
                    } else if punct_at(toks, j, close) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                ranges.push((start, j));
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(a, b)| i >= a && i <= b)
}

/// Scan one file's source under `scope`; `path` is used only for reporting.
pub fn scan_source(path: &str, src: &str, scope: Scope) -> Vec<Finding> {
    let toks = lex(src);
    let mut out = Vec::new();
    let push = |out: &mut Vec<Finding>, rule: &'static str, line: u32, message: String| {
        out.push(Finding {
            rule,
            path: path.to_string(),
            line,
            message,
        });
    };

    // PI003 and OB001 both exempt `#[cfg(test)]` blocks (tests may panic
    // and may print).
    let excluded = if scope.hotpath || scope.telemetry {
        excluded_ranges(&toks)
    } else {
        Vec::new()
    };

    for i in 0..toks.len() {
        let line = toks[i].line;
        let Some(ident) = ident_at(&toks, i) else {
            continue;
        };
        // --- ND001: wall-clock time -------------------------------------
        if scope.nondet {
            if ident == "std" && path_seg(&toks, i, "time") {
                push(&mut out, "ND001", line, "use of std::time".to_string());
            }
            if ident == "Instant" || ident == "SystemTime" {
                push(&mut out, "ND001", line, format!("use of {ident}"));
            }
        }
        // --- ND002: entropy randomness ----------------------------------
        if scope.nondet && matches!(ident, "thread_rng" | "from_entropy" | "OsRng") {
            push(&mut out, "ND002", line, format!("use of {ident}"));
        }
        // --- ND003: hash-ordered state ----------------------------------
        if scope.hash_state && matches!(ident, "HashMap" | "HashSet") {
            push(
                &mut out,
                "ND003",
                line,
                format!("{ident} in sim-visible code (use BTreeMap/BTreeSet or dense-ID Vec)"),
            );
        }
        // --- ND004: environment reads -----------------------------------
        if scope.nondet {
            if ident == "std" && path_seg(&toks, i, "env") {
                push(&mut out, "ND004", line, "use of std::env".to_string());
            } else if ident == "env"
                && punct_at(&toks, i + 1, ':')
                && punct_at(&toks, i + 2, ':')
                && matches!(
                    ident_at(&toks, i + 3),
                    Some("var" | "vars" | "var_os" | "args" | "args_os")
                )
            {
                push(&mut out, "ND004", line, "environment read".to_string());
            }
        }
        // --- ND005: threads/channels outside the parallel engine --------
        if scope.threads {
            if ident == "thread" && (path_seg(&toks, i, "spawn") || path_seg(&toks, i, "scope")) {
                let what = ident_at(&toks, i + 3).unwrap_or_default();
                push(
                    &mut out,
                    "ND005",
                    line,
                    format!("thread::{what} outside crates/sim/src/parallel.rs"),
                );
            }
            if ident == "mpsc" {
                push(
                    &mut out,
                    "ND005",
                    line,
                    "mpsc channel outside crates/sim/src/parallel.rs".to_string(),
                );
            }
        }
        // --- PI001: narrowing casts -------------------------------------
        if scope.proto
            && ident == "as"
            && matches!(
                ident_at(&toks, i + 1),
                Some("u8" | "u16" | "u32" | "i8" | "i16" | "i32")
            )
        {
            push(
                &mut out,
                "PI001",
                line,
                format!(
                    "bare `as {}` narrowing cast in bookkeeping path (use try_from)",
                    ident_at(&toks, i + 1).unwrap_or_default()
                ),
            );
        }
        // --- PI003: hot-path panics -------------------------------------
        if scope.hotpath && !in_ranges(&excluded, i) {
            if ident == "panic" && punct_at(&toks, i + 1, '!') {
                push(
                    &mut out,
                    "PI003",
                    line,
                    "panic! on the NIC hot path".to_string(),
                );
            }
            if matches!(ident, "unwrap" | "expect") && i > 0 && punct_at(&toks, i - 1, '.') {
                push(
                    &mut out,
                    "PI003",
                    line,
                    format!(".{ident}() on the NIC hot path"),
                );
            }
        }
        // --- OB001: ad-hoc print telemetry in the engine crate ----------
        if scope.telemetry
            && !in_ranges(&excluded, i)
            && matches!(ident, "println" | "eprintln" | "print" | "eprint" | "dbg")
            && punct_at(&toks, i + 1, '!')
        {
            push(
                &mut out,
                "OB001",
                line,
                format!("{ident}! in crates/sim (route telemetry through the metrics registry)"),
            );
        }
        // --- PI002: wildcard arms in SpanEvent/Phase/CausalKind matches -
        if scope.exporter && ident == "match" {
            scan_match(&toks, i, path, &mut out);
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Inspect one `match` whose keyword sits at `kw`: if its arm *patterns*
/// name `SpanEvent::`, `Phase::` or `CausalKind::` and an arm-level `_ =>` (or
/// `_ if ... =>`) exists, flag it.
///
/// Only pattern positions count: a match over some other type whose arm
/// *bodies* construct or emit span events (common in tests and drivers) is
/// not an exporter and must not be flagged. Pattern position is tracked
/// with a small state machine: everything from the body's `{` (or from an
/// arm-ending `,` / block close back to depth 1) up to the next `=>` is
/// pattern + guard; everything after `=>` is body.
fn scan_match(toks: &[Token], kw: usize, path: &str, out: &mut Vec<Finding>) {
    // Find the body's opening brace: the first '{' at bracket/paren depth 0
    // after the scrutinee expression.
    let mut i = kw + 1;
    let mut depth = 0isize;
    let body_open = loop {
        match toks.get(i).map(|t| &t.tok) {
            None => return,
            Some(Tok::Punct('(' | '[')) => depth += 1,
            Some(Tok::Punct(')' | ']')) => depth -= 1,
            Some(Tok::Punct('{')) if depth == 0 => break i,
            _ => {}
        }
        i += 1;
    };
    // Walk the body, tracking brace depth (relative: body '{' = 1) and
    // paren/bracket depth within it.
    let mut brace = 0isize;
    let mut inner = 0isize;
    let mut in_pattern = true;
    let mut span_in_pattern = false;
    let mut wildcard_at: Option<u32> = None;
    let mut i = body_open;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => brace += 1,
            Tok::Punct('}') => {
                brace -= 1;
                if brace == 0 {
                    break;
                }
                // A `{ ... }` arm body closing back to depth 1 ends the
                // arm; the next tokens are the next arm's pattern.
                if brace == 1 && inner == 0 {
                    in_pattern = true;
                }
            }
            Tok::Punct('(' | '[') => inner += 1,
            Tok::Punct(')' | ']') => inner -= 1,
            Tok::Punct('=')
                if brace == 1 && inner == 0 && in_pattern && punct_at(toks, i + 1, '>') =>
            {
                in_pattern = false;
                i += 1; // skip the '>'
            }
            Tok::Punct(',') if brace == 1 && inner == 0 => in_pattern = true,
            // Any inner depth: tuple patterns like `(SpanEvent::X, _)`
            // still make this an exporter match.
            Tok::Ident(s)
                if (s == "SpanEvent" || s == "Phase" || s == "CausalKind")
                    && punct_at(toks, i + 1, ':')
                    && in_pattern
                    && brace >= 1 =>
            {
                span_in_pattern = true;
            }
            // `_` lexes as an identifier. An arm-level wildcard sits in
            // pattern position at brace depth 1 / bracket depth 0 and is
            // followed by `=>` or a guard `if`.
            Tok::Ident(s)
                if s == "_"
                    && in_pattern
                    && brace == 1
                    && inner == 0
                    && wildcard_at.is_none()
                    && (ident_at(toks, i + 1) == Some("if")
                        || (punct_at(toks, i + 1, '=') && punct_at(toks, i + 2, '>'))) =>
            {
                wildcard_at = Some(toks[i].line);
            }
            _ => {}
        }
        i += 1;
    }
    if span_in_pattern {
        if let Some(line) = wildcard_at {
            out.push(Finding {
                rule: "PI002",
                path: path.to_string(),
                line,
                message: "wildcard `_ =>` arm in a match over SpanEvent/Phase/CausalKind"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope_all() -> Scope {
        Scope {
            nondet: true,
            hash_state: true,
            threads: true,
            proto: true,
            hotpath: true,
            exporter: true,
            telemetry: true,
        }
    }

    fn rules_of(src: &str, scope: Scope) -> Vec<&'static str> {
        scan_source("t.rs", src, scope)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn hash_collections_flagged_outside_strings() {
        let src = r#"
            use std::collections::HashMap;
            // HashMap in a comment is fine
            let s = "HashMap in a string is fine";
            let m: HashMap<u32, u32> = HashMap::new();
        "#;
        let rules = rules_of(src, scope_all());
        assert_eq!(rules.iter().filter(|r| **r == "ND003").count(), 3);
    }

    #[test]
    fn wall_clock_and_env_flagged() {
        let src = "let t = std::time::Instant::now(); let v = std::env::var(\"X\");";
        let rules = rules_of(src, scope_all());
        assert!(rules.contains(&"ND001"));
        assert!(rules.contains(&"ND004"));
    }

    #[test]
    fn threads_and_channels_flagged() {
        let src = r#"
            let h = std::thread::spawn(|| {});
            std::thread::scope(|s| {});
            let (tx, rx) = std::sync::mpsc::channel::<u32>();
            // thread::spawn in a comment is fine
            let s = "thread::spawn in a string is fine";
        "#;
        let rules = rules_of(src, scope_all());
        assert_eq!(rules.iter().filter(|r| **r == "ND005").count(), 3);
        // Out of scope (the parallel engine itself, the algos harness,
        // bench binaries): nothing flagged.
        let exempt = Scope {
            threads: false,
            ..scope_all()
        };
        assert!(rules_of(src, exempt).iter().all(|r| *r != "ND005"));
        // `available_parallelism` and thread-local storage are not
        // concurrency primitives and stay legal everywhere.
        let benign = "let n = std::thread::available_parallelism();";
        assert!(rules_of(benign, scope_all()).is_empty());
    }

    #[test]
    fn narrowing_cast_flagged_but_widening_not() {
        let src = "let a = x as u16; let b = y as u64; let c = z as usize;";
        let rules = rules_of(src, scope_all());
        assert_eq!(rules.iter().filter(|r| **r == "PI001").count(), 1);
    }

    #[test]
    fn hot_path_panic_flagged_outside_tests_and_debug_assert() {
        let src = r#"
            fn hot(x: Option<u32>) -> u32 {
                debug_assert!(x.clone().unwrap() > 0);
                x.unwrap()
            }
            #[cfg(test)]
            mod tests {
                fn t(x: Option<u32>) { x.unwrap(); panic!("boom"); }
            }
        "#;
        let rules = rules_of(src, scope_all());
        assert_eq!(rules.iter().filter(|r| **r == "PI003").count(), 1);
    }

    #[test]
    fn span_event_wildcard_match_flagged() {
        let flagged = r#"
            fn f(e: &SpanEvent) -> u32 {
                match e {
                    SpanEvent::Fire { .. } => 1,
                    _ => 0,
                }
            }
        "#;
        assert_eq!(rules_of(flagged, scope_all()), vec!["PI002"]);
        let exhaustive = r#"
            fn f(e: &SpanEvent) -> u32 {
                match e {
                    SpanEvent::Fire { .. } => 1,
                    SpanEvent::Wire { .. } => 2,
                }
            }
        "#;
        assert!(rules_of(exhaustive, scope_all()).is_empty());
        let unrelated = r#"
            fn f(x: u32) -> u32 {
                match x {
                    0 => 1,
                    _ => 0,
                }
            }
        "#;
        assert!(rules_of(unrelated, scope_all()).is_empty());
    }

    #[test]
    fn causal_kind_wildcard_match_flagged() {
        let flagged = r#"
            fn f(k: CausalKind) -> &'static str {
                match k {
                    CausalKind::Wire => "wire",
                    _ => "other",
                }
            }
        "#;
        assert_eq!(rules_of(flagged, scope_all()), vec!["PI002"]);
        let exhaustive = r#"
            fn f(k: CausalKind) -> u32 {
                match k {
                    CausalKind::Wire => 1,
                    CausalKind::Nack => 2,
                }
            }
        "#;
        assert!(rules_of(exhaustive, scope_all()).is_empty());
    }

    #[test]
    fn nested_unrelated_match_inside_span_match_is_clean() {
        let src = r#"
            fn f(e: &SpanEvent, x: u32) -> u32 {
                match e {
                    SpanEvent::Fire { .. } => match x {
                        0 => 1,
                        _ => 0,
                    },
                    SpanEvent::Wire { .. } => 2,
                }
            }
        "#;
        // The inner wildcard is at brace depth 2 of the outer match, and the
        // inner match body has no SpanEvent:: patterns.
        assert!(rules_of(src, scope_all()).is_empty());
    }

    #[test]
    fn span_events_in_arm_bodies_do_not_make_a_match_an_exporter() {
        // A match over `Msg` that *emits* spans in its bodies is not an
        // exporter: the wildcard is fine.
        let src = r#"
            fn f(msg: Msg, ctx: &mut Ctx) {
                match msg {
                    Msg::Tick(0) => {
                        ctx.span(SpanEvent::OpBegin { group: 7, seq: 0 });
                    }
                    Msg::Tick(1) => ctx.span(SpanEvent::Fire { unit: 0, dst: 1 }),
                    _ => unreachable!(),
                }
            }
        "#;
        assert!(rules_of(src, scope_all()).is_empty());
    }

    #[test]
    fn tuple_pattern_full_wildcard_is_flagged_but_positional_is_not() {
        let flagged = r#"
            fn f(e: &SpanEvent, x: u32) -> u32 {
                match (e, x) {
                    (SpanEvent::Fire { .. }, _) => 1,
                    _ => 0,
                }
            }
        "#;
        assert_eq!(rules_of(flagged, scope_all()), vec!["PI002"]);
        let positional = r#"
            fn f(e: &SpanEvent, x: u32) -> u32 {
                match (e, x) {
                    (SpanEvent::Fire { .. }, _) => 1,
                    (SpanEvent::Wire { .. }, n) => n,
                }
            }
        "#;
        assert!(rules_of(positional, scope_all()).is_empty());
    }

    #[test]
    fn print_telemetry_flagged_outside_tests() {
        let src = r#"
            fn report(n: u64) {
                println!("events: {n}");
                eprintln!("warning");
                dbg!(n);
                // println! in a comment is fine
                let s = "println! in a string is fine";
            }
            #[cfg(test)]
            mod tests {
                fn t() { println!("tests may print"); }
            }
        "#;
        let rules = rules_of(src, scope_all());
        assert_eq!(rules.iter().filter(|r| **r == "OB001").count(), 3);
        // Out of scope (bench binaries, other crates): nothing flagged.
        let exempt = Scope {
            telemetry: false,
            ..scope_all()
        };
        assert!(rules_of(src, exempt).iter().all(|r| *r != "OB001"));
        // `writeln!` into a buffer is rendering, not telemetry.
        let benign = "use std::fmt::Write; fn f(out: &mut String) { writeln!(out, \"x\").ok(); }";
        assert!(rules_of(benign, scope_all()).iter().all(|r| *r != "OB001"));
    }

    #[test]
    fn scope_gates_rules() {
        let src = "let m: HashMap<u32, u32> = HashMap::new(); let a = x as u16;";
        let none = Scope::default();
        assert!(scan_source("t.rs", src, none).is_empty());
        let nd_only = Scope {
            hash_state: true,
            ..Scope::default()
        };
        assert_eq!(rules_of(src, nd_only), vec!["ND003", "ND003"]);
    }
}
