//! `nicbar-lint` — the workspace static-analysis gate.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p nicbar-lint              # scan the workspace
//! cargo run --release -p nicbar-lint -- --fixtures # rule self-test corpus
//! cargo run --release -p nicbar-lint -- --root <dir>
//! cargo run --release -p nicbar-lint -- --format json
//! ```
//!
//! The scan walks every `.rs` file under `crates/*` (vendor and the lint
//! crate itself excluded), parses each into an item tree, applies the
//! token-level rule catalogue of [`rules`], runs the flow-sensitive
//! nondeterminism analysis of [`flow`] over the whole workspace at once
//! (so taint crosses crate boundaries), checks the crate graph for
//! layering violations, subtracts the audited exceptions in `lint.toml`,
//! prints a per-rule summary table and exits nonzero if any unallowlisted
//! finding remains — or if an allowlist entry matched nothing (stale
//! exceptions must not outlive the code they excuse). `--fixtures` instead
//! runs every file in `crates/lint/fixtures/` against the rules and
//! asserts the `//~ RULE` markers line-for-line — the corpus the rules are
//! developed against. `--format json` emits machine-readable findings.

mod allow;
mod flow;
mod lexer;
mod parser;
mod rules;

use parser::FileTree;
use rules::{Finding, Scope};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fixtures = false;
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Human;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fixtures" => fixtures = true,
            "--root" => {
                let Some(dir) = it.next() else {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(dir));
            }
            "--format" => match it.next().map(String::as_str) {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("--format expects human|json, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "unknown argument {other} (expected --fixtures / --root <dir> / --format <human|json>)"
                );
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.map_or_else(find_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("nicbar-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if fixtures {
        run_fixtures(&root)
    } else {
        run_scan(&root, format)
    }
}

/// Ascend from the current directory to the workspace root (the directory
/// holding `lint.toml` next to a `Cargo.toml`).
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        if dir.join("lint.toml").is_file() && dir.join("Cargo.toml").is_file() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("no lint.toml found between cwd and filesystem root".to_string());
        }
    }
}

/// Recursively collect `.rs` files under `dir`, repo-relative, sorted.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" {
                continue;
            }
            collect_rs(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

/// Minimal JSON string escaping for the `--format json` output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Workspace scan
// ---------------------------------------------------------------------------

fn run_scan(root: &Path, format: Format) -> ExitCode {
    let mut files = Vec::new();
    collect_rs(root, &root.join("crates"), &mut files);

    // Pass 1: parse every in-scope file (the flow analysis needs the whole
    // workspace at once so taint can cross crate boundaries).
    let mut trees: Vec<(FileTree, Scope)> = Vec::new();
    let mut sources: BTreeMap<String, String> = BTreeMap::new();
    for rel in &files {
        let Some(scope) = Scope::for_path(rel) else {
            continue;
        };
        let src = match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("nicbar-lint: cannot read {rel}: {e}");
                return ExitCode::from(2);
            }
        };
        trees.push((parser::parse(rel, lexer::lex(&src)), scope));
        sources.insert(rel.clone(), src);
    }

    // Pass 2: token-level rules per file, then the workspace flow analysis.
    let mut findings: Vec<(Finding, String)> = Vec::new(); // finding + source line text
    let line_text = |path: &str, line: u32| -> String {
        sources
            .get(path)
            .and_then(|src| src.lines().nth(line as usize - 1))
            .unwrap_or("")
            .to_string()
    };
    for (tree, scope) in &trees {
        for f in rules::scan_file(tree, *scope) {
            let text = line_text(&f.path, f.line);
            findings.push((f, text));
        }
    }
    for f in flow::analyze(&trees) {
        let text = line_text(&f.path, f.line);
        findings.push((f, text));
    }
    findings.extend(check_layering(root).into_iter().map(|f| (f, String::new())));
    findings.sort_by(|(a, _), (b, _)| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    // Subtract the allowlist.
    let allow_src = std::fs::read_to_string(root.join("lint.toml")).unwrap_or_default();
    let mut allowlist = match allow::parse(&allow_src) {
        Ok(a) => a,
        Err((line, msg)) => {
            eprintln!("nicbar-lint: lint.toml:{line}: {msg}");
            return ExitCode::from(2);
        }
    };
    let mut unallowed: Vec<&(Finding, String)> = Vec::new();
    let mut allowed_per_rule: BTreeMap<&str, u64> = BTreeMap::new();
    for pair in &findings {
        let (f, text) = pair;
        if let Some(entry) = allowlist
            .iter_mut()
            .find(|e| e.covers(f.rule, &f.path, text))
        {
            entry.used += 1;
            *allowed_per_rule.entry(f.rule).or_default() += 1;
        } else {
            unallowed.push(pair);
        }
    }
    // Stale entries are failures, not warnings: an audited exception that
    // matches nothing either outlived the code it excused or was never
    // needed — both mean lint.toml no longer reflects the tree.
    let stale: Vec<&allow::AllowEntry> = allowlist.iter().filter(|e| e.used == 0).collect();

    if format == Format::Json {
        let mut out = String::from("{\"findings\":[");
        let mut first = true;
        for (f, text) in &findings {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\",\"text\":\"{}\"}}",
                f.rule,
                json_escape(&f.path),
                f.line,
                json_escape(&f.message),
                json_escape(text.trim()),
            ));
        }
        out.push_str("],\"unallowed\":[");
        for (i, (f, _)) in unallowed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{}}}",
                f.rule,
                json_escape(&f.path),
                f.line
            ));
        }
        out.push_str("],\"stale_allowlist\":[");
        for (i, e) in stale.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"decl_line\":{}}}",
                json_escape(&e.rule),
                json_escape(&e.path),
                e.decl_line
            ));
        }
        out.push_str(&format!(
            "],\"files_scanned\":{},\"total_findings\":{}}}",
            trees.len(),
            findings.len()
        ));
        println!("{out}");
    } else {
        for (f, text) in &unallowed {
            println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
            if !text.is_empty() {
                println!("    {}", text.trim());
            }
        }
        for e in &stale {
            println!(
                "lint.toml:{}: stale allowlist entry ({} in {}) matched nothing — remove it",
                e.decl_line, e.rule, e.path
            );
        }

        // Summary table.
        println!();
        println!("rule    findings  allowed  description");
        println!("-----   --------  -------  -----------");
        for (rule, desc) in rules::CATALOGUE {
            let total = findings.iter().filter(|(f, _)| f.rule == *rule).count() as u64;
            let allowed = allowed_per_rule.get(rule).copied().unwrap_or(0);
            println!("{rule:<7} {total:>8}  {allowed:>7}  {desc}");
        }
        println!();
        if unallowed.is_empty() && stale.is_empty() {
            println!(
                "nicbar-lint: {} files scanned, {} finding(s), all allowlisted — OK",
                trees.len(),
                findings.len()
            );
        } else {
            println!(
                "nicbar-lint: {} unallowlisted finding(s), {} stale allowlist entrie(s) — add a fix or an audited lint.toml entry",
                unallowed.len(),
                stale.len()
            );
        }
    }
    if unallowed.is_empty() && stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// Layering (LY001): crate-graph check from the manifests
// ---------------------------------------------------------------------------

/// `(crate, forbidden transitive dependencies)`; substrate-independent
/// layers must never pull in a backend — and nothing but the tooling layer
/// may depend on the model checker.
const LAYERING: &[(&str, &[&str])] = &[
    (
        "nicbar-sim",
        &[
            "nicbar-net",
            "nicbar-gm",
            "nicbar-elan",
            "nicbar-core",
            "nicbar-mpi",
            "nicbar-bench",
            "nicbar-verify",
        ],
    ),
    (
        "nicbar-net",
        &[
            "nicbar-gm",
            "nicbar-elan",
            "nicbar-core",
            "nicbar-mpi",
            "nicbar-bench",
            "nicbar-verify",
        ],
    ),
    (
        "nicbar-gm",
        &[
            "nicbar-elan",
            "nicbar-core",
            "nicbar-bench",
            "nicbar-verify",
        ],
    ),
    (
        "nicbar-elan",
        &["nicbar-gm", "nicbar-core", "nicbar-bench", "nicbar-verify"],
    ),
    ("nicbar-core", &["nicbar-bench", "nicbar-verify"]),
];

fn check_layering(root: &Path) -> Vec<Finding> {
    // name -> (manifest path, direct nicbar deps)
    let mut graph: BTreeMap<String, (String, Vec<String>)> = BTreeMap::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return Vec::new();
    };
    let mut dirs: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    dirs.sort();
    for dir in dirs {
        let manifest = dir.join("Cargo.toml");
        let Ok(src) = std::fs::read_to_string(&manifest) else {
            continue;
        };
        let rel = manifest
            .strip_prefix(root)
            .map(|p| p.to_string_lossy().replace('\\', "/"))
            .unwrap_or_default();
        let (name, deps) = parse_manifest(&src);
        if let Some(name) = name {
            graph.insert(name, (rel, deps));
        }
    }
    let mut findings = Vec::new();
    for (krate, forbidden) in LAYERING {
        let Some((manifest, _)) = graph.get(*krate) else {
            continue;
        };
        let reachable = transitive(&graph, krate);
        for f in *forbidden {
            if reachable.contains(&f.to_string()) {
                findings.push(Finding {
                    rule: "LY001",
                    path: manifest.clone(),
                    line: 1,
                    message: format!("{krate} must not depend (transitively) on {f}"),
                });
            }
        }
    }
    findings
}

/// Extract the package name and the `nicbar-*` entries of `[dependencies]`
/// (dev-dependencies are deliberately ignored: tests may cross layers).
fn parse_manifest(src: &str) -> (Option<String>, Vec<String>) {
    let mut name = None;
    let mut deps = Vec::new();
    let mut section = String::new();
    for raw in src.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line.to_string();
            continue;
        }
        if section == "[package]" && name.is_none() {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    name = Some(v.trim().trim_matches('"').to_string());
                }
            }
        }
        if section == "[dependencies]" {
            if let Some((dep, _)) = line.split_once('=') {
                let dep = dep.trim();
                if dep.starts_with("nicbar-") {
                    deps.push(dep.to_string());
                }
            }
        }
    }
    (name, deps)
}

fn transitive(graph: &BTreeMap<String, (String, Vec<String>)>, start: &str) -> Vec<String> {
    let mut seen: Vec<String> = Vec::new();
    let mut stack: Vec<String> = graph
        .get(start)
        .map(|(_, deps)| deps.clone())
        .unwrap_or_default();
    while let Some(next) = stack.pop() {
        if seen.contains(&next) {
            continue;
        }
        if let Some((_, deps)) = graph.get(&next) {
            stack.extend(deps.iter().cloned());
        }
        seen.push(next);
    }
    seen.sort();
    seen
}

// ---------------------------------------------------------------------------
// Fixture self-test (--fixtures)
// ---------------------------------------------------------------------------

/// Fixture scope from the filename prefix. `simvis_` files run the ND
/// rules, `proto_` the PI001/PR*** family, `hotpath_` PI003, `exporter_`
/// PI002, `telemetry_` OB001; every fixture also runs the exporter rule
/// (it is workspace-wide in the real scan).
fn fixture_scope(name: &str) -> Option<Scope> {
    let mut scope = Scope {
        exporter: true,
        ..Scope::default()
    };
    if name.starts_with("simvis_") {
        scope.nondet = true;
        scope.hash_state = true;
    } else if name.starts_with("threads_") {
        scope.threads = true;
        scope.atomics = true;
    } else if name.starts_with("proto_") {
        scope.proto = true;
    } else if name.starts_with("hotpath_") {
        scope.hotpath = true;
    } else if name.starts_with("telemetry_") {
        scope.telemetry = true;
    } else if !name.starts_with("exporter_") {
        return None;
    }
    Some(scope)
}

fn run_fixtures(root: &Path) -> ExitCode {
    let dir = root.join("crates/lint/fixtures");
    let mut files = Vec::new();
    collect_rs(root, &dir, &mut files);
    if files.is_empty() {
        eprintln!("nicbar-lint: no fixtures under {}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut failures = 0usize;
    let mut total_expected = 0usize;
    for rel in &files {
        let name = rel.rsplit('/').next().unwrap_or(rel);
        let Some(scope) = fixture_scope(name) else {
            eprintln!("{rel}: FAIL — unknown fixture category prefix");
            failures += 1;
            continue;
        };
        let src = match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{rel}: FAIL — {e}");
                failures += 1;
                continue;
            }
        };
        // Expected findings: every `//~ RULE [RULE...]` marker, keyed by line.
        let mut expected: Vec<(u32, String)> = Vec::new();
        for (idx, line) in src.lines().enumerate() {
            if let Some(rest) = line.split("//~").nth(1) {
                for rule in rest.split_whitespace() {
                    expected.push((idx as u32 + 1, rule.to_string()));
                }
            }
        }
        total_expected += expected.len();
        // Each fixture is analyzed as its own one-file workspace: token
        // rules plus the flow analysis (so fixtures can exercise taint
        // propagation through local call chains).
        let ws = vec![(parser::parse(rel, lexer::lex(&src)), scope)];
        let mut findings = rules::scan_file(&ws[0].0, scope);
        findings.extend(flow::analyze(&ws));
        let mut got: Vec<(u32, String)> = findings
            .into_iter()
            .map(|f| (f.line, f.rule.to_string()))
            .collect();
        expected.sort();
        got.sort();
        if got == expected {
            println!("{name}: ok ({} finding(s))", expected.len());
        } else {
            failures += 1;
            eprintln!("{rel}: FAIL");
            for e in &expected {
                if !got.contains(e) {
                    eprintln!("  missing: line {} {}", e.0, e.1);
                }
            }
            for g in &got {
                if !expected.contains(g) {
                    eprintln!("  unexpected: line {} {}", g.0, g.1);
                }
            }
        }
    }
    println!(
        "nicbar-lint --fixtures: {} fixture(s), {} expected finding(s), {} failure(s)",
        files.len(),
        total_expected,
        failures
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
