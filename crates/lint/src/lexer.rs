//! A minimal Rust lexer for the lint rules.
//!
//! The offline build environment carries no `syn`, so — in the same spirit
//! as the vendored `proptest`/`criterion` work-alikes — the analysis runs
//! on a purpose-built token stream instead of a full AST. The lexer strips
//! comments, string/char literals and lifetimes (so `"HashMap"` in a string
//! or `// HashMap` in a comment can never trigger a rule) and returns
//! identifiers, punctuation and literal placeholders with 1-based line
//! numbers. That is exactly the surface the rules in [`crate::rules`] need:
//! path segments (`std :: time`), method calls (`. unwrap`), cast syntax
//! (`as u16`) and brace/paren structure for `match` bodies.

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// Number, string, byte-string or char literal (contents stripped).
    Lit,
}

/// A token plus the 1-based source line it starts on.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    /// Consume a (possibly raw) string literal body; the opening delimiter
    /// has already been consumed up to and including the first `"`.
    fn skip_string(&mut self, raw: bool, hashes: usize) {
        loop {
            match self.bump() {
                None => return,
                Some('\\') if !raw => {
                    self.bump(); // escaped char (incl. \" and \\)
                }
                Some('"') => {
                    // Raw string: the close is `"` followed by `hashes`
                    // hashes; plain strings close immediately.
                    let mut seen = 0;
                    while seen < hashes && self.peek(0) == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        return;
                    }
                }
                Some(_) => {}
            }
        }
    }
}

/// Lex `src` into a token stream.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let line = cur.line;
        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            while let Some(c) = cur.peek(0) {
                if c == '\n' {
                    break;
                }
                cur.bump();
            }
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match cur.bump() {
                    None => break,
                    Some('/') if cur.peek(0) == Some('*') => {
                        cur.bump();
                        depth += 1;
                    }
                    Some('*') if cur.peek(0) == Some('/') => {
                        cur.bump();
                        depth -= 1;
                    }
                    Some(_) => {}
                }
            }
            continue;
        }
        // Raw identifiers: `r#match`, `r#type`. Must be checked before the
        // raw-string branch (`r#"` is a string, `r#m` is an identifier) and
        // before the plain-identifier branch (which would stop at the `#`
        // and leave a stray keyword token behind — a stray `match` ident
        // derails the match-arm scanner in `rules`). The token keeps its
        // `r#` prefix so keyword comparisons never mistake `r#match` for
        // the `match` keyword.
        if c == 'r' && cur.peek(1) == Some('#') && cur.peek(2).is_some_and(is_ident_start) {
            let mut ident = String::from("r#");
            cur.bump();
            cur.bump();
            while let Some(c) = cur.peek(0) {
                if is_ident_continue(c) {
                    ident.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            out.push(Token {
                tok: Tok::Ident(ident),
                line,
            });
            continue;
        }
        // Raw / byte strings: r"..", r#".."#, b"..", br#".."#.
        if (c == 'r' || c == 'b') && raw_string_lookahead(&cur) {
            let mut raw = false;
            while matches!(cur.peek(0), Some('r') | Some('b')) {
                raw |= cur.peek(0) == Some('r');
                cur.bump();
            }
            let mut hashes = 0usize;
            while cur.peek(0) == Some('#') {
                cur.bump();
                hashes += 1;
            }
            debug_assert_eq!(cur.peek(0), Some('"'));
            cur.bump();
            cur.skip_string(raw, hashes);
            out.push(Token {
                tok: Tok::Lit,
                line,
            });
            continue;
        }
        // Identifiers / keywords (after the raw-string check so `r#"` is
        // not mistaken for an ident).
        if is_ident_start(c) {
            let mut ident = String::new();
            while let Some(c) = cur.peek(0) {
                if is_ident_continue(c) {
                    ident.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            out.push(Token {
                tok: Tok::Ident(ident),
                line,
            });
            continue;
        }
        // Plain strings.
        if c == '"' {
            cur.bump();
            cur.skip_string(false, 0);
            out.push(Token {
                tok: Tok::Lit,
                line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            cur.bump();
            match cur.peek(0) {
                // `'a` / `'static` lifetime (not followed by a closing
                // quote): swallow the label, emit nothing.
                Some(n) if is_ident_start(n) && cur.peek(1) != Some('\'') => {
                    while let Some(c) = cur.peek(0) {
                        if is_ident_continue(c) {
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                }
                // Char literal: consume until the unescaped closing quote.
                _ => {
                    loop {
                        match cur.bump() {
                            None | Some('\'') => break,
                            Some('\\') => {
                                cur.bump();
                            }
                            Some(_) => {}
                        }
                    }
                    out.push(Token {
                        tok: Tok::Lit,
                        line,
                    });
                }
            }
            continue;
        }
        // Numbers (loose: handles 0xFF, 1_000, 1.5e-3, 4usize).
        if c.is_ascii_digit() {
            while let Some(c) = cur.peek(0) {
                let continues = c.is_alphanumeric()
                    || c == '_'
                    || (c == '.' && cur.peek(1).is_some_and(|d| d.is_ascii_digit()));
                if !continues {
                    break;
                }
                cur.bump();
            }
            out.push(Token {
                tok: Tok::Lit,
                line,
            });
            continue;
        }
        // Everything else: single punctuation character.
        cur.bump();
        out.push(Token {
            tok: Tok::Punct(c),
            line,
        });
    }
    out
}

/// Does the cursor sit on a raw/byte string prefix (`r"`, `r#`, `b"`,
/// `br"`, `br#`...)? Plain identifiers like `routes` must not match.
fn raw_string_lookahead(cur: &Cursor) -> bool {
    let mut i = 0;
    let mut saw_r = false;
    if cur.peek(i) == Some('b') {
        i += 1;
    }
    if cur.peek(i) == Some('r') {
        saw_r = true;
        i += 1;
    }
    if i == 0 {
        return false;
    }
    let mut hashes = 0usize;
    while cur.peek(i) == Some('#') {
        i += 1;
        hashes += 1;
    }
    if hashes > 0 && !saw_r {
        return false; // `b#"` is not a string prefix
    }
    cur.peek(i) == Some('"')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            let s = "HashMap in a string";
            let r = r#"HashMap raw "quoted" string"#;
            let c = 'H';
            let real = BTreeMap::new();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap"), "{ids:?}");
        assert!(ids.iter().any(|i| i == "BTreeMap"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(ids.contains(&"str".to_string()));
        assert!(!ids.contains(&"a".to_string()), "{ids:?}");
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n  c");
        let lines: Vec<(String, u32)> = toks
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some((s, t.line)),
                _ => None,
            })
            .collect();
        assert_eq!(
            lines,
            vec![
                ("a".to_string(), 1),
                ("b".to_string(), 2),
                ("c".to_string(), 3)
            ]
        );
    }

    #[test]
    fn numbers_with_method_calls_keep_the_dot_call() {
        // `0.max(x)` must lex as Lit . max ( x ) — the `.` must not be
        // swallowed into the number.
        let toks = lex("let y = 0.max(x);");
        let has_max = toks
            .iter()
            .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "max"));
        assert!(has_max);
    }

    #[test]
    fn escaped_quotes_do_not_end_strings_early() {
        let ids = idents(r#"let s = "a \" HashMap \" b"; let t = ok;"#);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"ok".to_string()));
    }

    #[test]
    fn raw_identifiers_are_single_tokens_with_prefix() {
        // `r#match` must not decay into `r`, `#`, `match`: the stray
        // `match` keyword would send the match-arm scanner into arbitrary
        // following tokens (regression fixture simvis_lexer_edge_pass.rs).
        let toks = lex("let r#match = 5; fn r#type() {} r#Instant");
        let ids: Vec<String> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(ids.contains(&"r#match".to_string()), "{ids:?}");
        assert!(ids.contains(&"r#type".to_string()), "{ids:?}");
        assert!(ids.contains(&"r#Instant".to_string()), "{ids:?}");
        assert!(!ids.contains(&"match".to_string()), "{ids:?}");
        assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
        assert!(!toks.iter().any(|t| t.tok == Tok::Punct('#')), "{toks:?}");
    }

    #[test]
    fn raw_string_prefix_still_wins_over_raw_ident() {
        // `r#"..."#` is a raw string, not a raw identifier.
        let toks = lex(r###"let s = r#"HashMap"#; let ok = 1;"###);
        let ids = idents(r###"let s = r#"HashMap"#; let ok = 1;"###);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(toks.iter().any(|t| t.tok == Tok::Lit));
    }

    #[test]
    fn multi_hash_raw_strings_close_on_exact_hash_count() {
        // The `"#` inside an `r##"…"##` body is content, not a close.
        let ids = idents(r#####"let s = r##"x "# Instant "##; let ok = 1;"#####);
        assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
        assert!(ids.contains(&"ok".to_string()));
    }

    #[test]
    fn byte_raw_strings_and_byte_chars() {
        let ids = idents(r##"let b = br#"HashSet " inside"#; let c = b'x'; let ok = 1;"##);
        assert!(!ids.contains(&"HashSet".to_string()), "{ids:?}");
        assert!(!ids.contains(&"x".to_string()), "{ids:?}");
        assert!(ids.contains(&"ok".to_string()));
    }

    #[test]
    fn deeply_nested_and_star_heavy_block_comments() {
        for src in [
            "/* a /* b /* c */ b */ a */ let ok = 1;",
            "/*/**/*/ let ok = 1;",
            "/* ** /* x **/ y **/ let ok = 1;",
            "/* \" unclosed quote in comment */ let ok = 1;",
            "/* line1\n line2 /* inner\n */ outer */ let ok = 1;",
        ] {
            let ids = idents(src);
            assert_eq!(ids, vec!["let", "ok"], "src: {src}");
        }
    }

    #[test]
    fn raw_strings_spanning_lines_keep_line_numbers() {
        let toks = lex("let s = r#\"a\nb\nc\"#;\nlet ok = 1;");
        let ok_line = toks
            .iter()
            .find_map(|t| match &t.tok {
                Tok::Ident(s) if s == "ok" => Some(t.line),
                _ => None,
            })
            .expect("ok token");
        assert_eq!(ok_line, 4);
    }
}
