//! A lightweight item-tree parser over the lexer's token stream.
//!
//! The offline environment has no `syn`, so — in the same spirit as the
//! vendored `proptest` work-alike — this is a purpose-built recursive
//! descent over `crate::lexer` tokens that recovers exactly the structure
//! the flow-sensitive rules need:
//!
//! * functions, with their signature and body token ranges, owning `impl`
//!   type and trait, unit-vs-value return, and whether they live under
//!   `#[cfg(test)]` / `#[test]`;
//! * struct fields with their flattened type text (so `self.epoch` can be
//!   typed when `epoch: Instant`);
//! * enum definitions with variant names;
//! * `match` bodies split into arms (pattern range, body range).
//!
//! Precision is deliberately bounded: nested items inside function bodies
//! are not re-entered (the body is an opaque token range), generics are
//! skipped by bracket balance, and types are kept as flattened text. Every
//! consumer treats "could not resolve" as "do not report" — the parser can
//! only make rules more precise, never louder.

use crate::lexer::{Tok, Token};

/// One function (or method) item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` target type (`PaperCollective` for methods).
    pub owner: Option<String>,
    /// Trait being implemented, for `impl Trait for Type` blocks.
    pub trait_of: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range `[fn_kw, body_open)` — name, params, return type.
    pub sig: (usize, usize),
    /// Token indices of the body `{` and its matching `}` (inclusive), or
    /// `None` for a bodiless trait-method signature.
    pub body: Option<(usize, usize)>,
    /// Whether the signature declares a non-unit return type.
    pub returns_value: bool,
    /// Inside `#[cfg(test)]` or marked `#[test]` — exempt from flow rules.
    pub in_test: bool,
}

/// One struct field with its flattened type text.
#[derive(Clone, Debug)]
pub struct Field {
    /// Struct the field belongs to.
    pub owner: String,
    /// Field name.
    pub name: String,
    /// Flattened type text, e.g. `Vec<Option<CollKind>>`.
    pub ty: String,
    /// 1-based declaration line (kept for future rules; nothing reads it
    /// yet).
    #[allow(dead_code)]
    pub line: u32,
}

/// One enum definition. The PR rules currently match on `Enum::` path
/// patterns rather than variant lists, so these fields are recorded but
/// not yet consumed (the parser tests assert they parse correctly).
#[derive(Clone, Debug)]
#[allow(dead_code)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
    /// 1-based declaration line.
    pub line: u32,
}

/// The parsed view of one file.
#[derive(Clone, Debug, Default)]
pub struct FileTree {
    /// Repo-relative path.
    pub path: String,
    /// The token stream the ranges index into.
    pub toks: Vec<Token>,
    /// Functions, in source order.
    pub fns: Vec<FnItem>,
    /// Struct fields.
    pub fields: Vec<Field>,
    /// Enum definitions.
    pub enums: Vec<EnumDef>,
}

/// One arm of a `match` body.
#[derive(Clone, Copy, Debug)]
pub struct MatchArm {
    /// Token range `[start, end)` of the pattern (including any guard).
    pub pat: (usize, usize),
    /// Token range `[start, end)` of the arm body.
    pub body: (usize, usize),
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Skip a balanced `#[...]` attribute starting at the `#`; returns the
/// index just past the closing `]` and whether the attribute is
/// `cfg(test)` or `test`.
fn skip_attr(toks: &[Token], i: usize) -> (usize, bool) {
    debug_assert!(punct_at(toks, i, '#'));
    let mut j = i + 1; // at '[' (or '!' for inner attrs)
    if punct_at(toks, j, '!') {
        j += 1;
    }
    if !punct_at(toks, j, '[') {
        return (i + 1, false);
    }
    let is_test = (ident_at(toks, j + 1) == Some("cfg")
        && punct_at(toks, j + 2, '(')
        && ident_at(toks, j + 3) == Some("test"))
        || (ident_at(toks, j + 1) == Some("test") && punct_at(toks, j + 2, ']'));
    let mut depth = 0usize;
    while j < toks.len() {
        if punct_at(toks, j, '[') {
            depth += 1;
        } else if punct_at(toks, j, ']') {
            depth -= 1;
            if depth == 0 {
                return (j + 1, is_test);
            }
        }
        j += 1;
    }
    (j, is_test)
}

/// Index of the matching close brace for the `{` at `open`.
fn matching_brace(toks: &[Token], open: usize) -> usize {
    debug_assert!(punct_at(toks, open, '{'));
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        if punct_at(toks, j, '{') {
            depth += 1;
        } else if punct_at(toks, j, '}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Skip a balanced `<...>` generics group starting at `<`; tolerates the
/// shift-ambiguity by plain angle counting (types in item position do not
/// contain comparison operators).
fn skip_generics(toks: &[Token], i: usize) -> usize {
    if !punct_at(toks, i, '<') {
        return i;
    }
    let mut depth = 0isize;
    let mut j = i;
    while j < toks.len() {
        if punct_at(toks, j, '<') {
            depth += 1;
        } else if punct_at(toks, j, '>') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Flatten a token range into readable text (`Vec < Option < T > >` →
/// `Vec<Option<T>>`).
pub fn flatten(toks: &[Token], range: (usize, usize)) -> String {
    let mut out = String::new();
    for t in &toks[range.0..range.1.min(toks.len())] {
        match &t.tok {
            Tok::Ident(s) => {
                if out
                    .chars()
                    .last()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    out.push(' ');
                }
                out.push_str(s);
            }
            Tok::Punct(c) => out.push(*c),
            Tok::Lit => out.push('#'),
        }
    }
    out
}

/// Parse one file. `path` is carried for reporting only.
pub fn parse(path: &str, toks: Vec<Token>) -> FileTree {
    let mut tree = FileTree {
        path: path.to_string(),
        toks,
        ..FileTree::default()
    };
    let end = tree.toks.len();
    parse_items(&mut tree, 0, end, None, None, false);
    tree
}

/// Walk `[lo, hi)` collecting items; `owner`/`trait_of` describe an
/// enclosing `impl`, `in_test` an enclosing test context.
fn parse_items(
    tree: &mut FileTree,
    lo: usize,
    hi: usize,
    owner: Option<&str>,
    trait_of: Option<&str>,
    in_test: bool,
) {
    let mut i = lo;
    let mut attr_test = false;
    while i < hi {
        if punct_at(&tree.toks, i, '#') {
            let (next, is_test) = skip_attr(&tree.toks, i);
            attr_test |= is_test;
            i = next;
            continue;
        }
        let Some(word) = ident_at(&tree.toks, i) else {
            // A stray brace group in item position (e.g. a const
            // initializer) is skipped wholesale.
            if punct_at(&tree.toks, i, '{') {
                i = matching_brace(&tree.toks, i) + 1;
            } else {
                i += 1;
            }
            attr_test = false;
            continue;
        };
        match word {
            "impl" => {
                // impl<G> Type { } | impl Trait for Type { } | impl Type::Assoc …
                let mut j = skip_generics(&tree.toks, i + 1);
                let first = ident_at(&tree.toks, j).map(str::to_string);
                // Scan to the body '{', noting a `for` that splits
                // trait from target type.
                let mut target = first.clone();
                let mut tr = None;
                while j < hi && !punct_at(&tree.toks, j, '{') {
                    if ident_at(&tree.toks, j) == Some("for") {
                        tr = first.clone();
                        target = ident_at(&tree.toks, j + 1).map(str::to_string);
                    }
                    j += 1;
                }
                if j < hi {
                    let close = matching_brace(&tree.toks, j);
                    parse_items(
                        tree,
                        j + 1,
                        close,
                        target.as_deref(),
                        tr.as_deref(),
                        in_test || attr_test,
                    );
                    i = close + 1;
                } else {
                    i = j;
                }
            }
            "mod" => {
                let mut j = i + 1;
                while j < hi && !punct_at(&tree.toks, j, '{') && !punct_at(&tree.toks, j, ';') {
                    j += 1;
                }
                if punct_at(&tree.toks, j, '{') {
                    let close = matching_brace(&tree.toks, j);
                    parse_items(tree, j + 1, close, None, None, in_test || attr_test);
                    i = close + 1;
                } else {
                    i = j + 1;
                }
            }
            "trait" => {
                let mut j = i + 1;
                while j < hi && !punct_at(&tree.toks, j, '{') {
                    j += 1;
                }
                if j < hi {
                    let close = matching_brace(&tree.toks, j);
                    parse_items(tree, j + 1, close, None, None, in_test || attr_test);
                    i = close + 1;
                } else {
                    i = j;
                }
            }
            "fn" => {
                let line = tree.toks[i].line;
                let name = ident_at(&tree.toks, i + 1).unwrap_or("").to_string();
                // Signature: scan to the body '{' or a ';' at zero
                // paren/bracket depth (angle depth is ignored: a `->`
                // return arrow or brace cannot hide inside generics).
                let mut j = i + 2;
                let mut depth = 0isize;
                let mut arrow_at: Option<usize> = None;
                while j < hi {
                    match &tree.toks[j].tok {
                        Tok::Punct('(' | '[') => depth += 1,
                        Tok::Punct(')' | ']') => depth -= 1,
                        Tok::Punct('-') if depth == 0 && punct_at(&tree.toks, j + 1, '>') => {
                            arrow_at = Some(j);
                        }
                        Tok::Punct('{') if depth == 0 => break,
                        Tok::Punct(';') if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let returns_value = arrow_at.is_some_and(|a| {
                    // `-> ()` is unit; anything else is a value.
                    !(punct_at(&tree.toks, a + 2, '(') && punct_at(&tree.toks, a + 3, ')'))
                });
                let body = if punct_at(&tree.toks, j, '{') {
                    Some((j, matching_brace(&tree.toks, j)))
                } else {
                    None
                };
                tree.fns.push(FnItem {
                    name,
                    owner: owner.map(str::to_string),
                    trait_of: trait_of.map(str::to_string),
                    line,
                    sig: (i, j),
                    body,
                    returns_value,
                    in_test: in_test || attr_test,
                });
                i = body.map_or(j + 1, |(_, close)| close + 1);
            }
            "struct" => {
                let name = ident_at(&tree.toks, i + 1).unwrap_or("").to_string();
                let mut j = skip_generics(&tree.toks, i + 2);
                while j < hi && !punct_at(&tree.toks, j, '{') && !punct_at(&tree.toks, j, ';') {
                    // Tuple struct `struct X(...);` — skip the parens.
                    if punct_at(&tree.toks, j, '(') {
                        let mut d = 0isize;
                        while j < hi {
                            if punct_at(&tree.toks, j, '(') {
                                d += 1;
                            } else if punct_at(&tree.toks, j, ')') {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            j += 1;
                        }
                    }
                    j += 1;
                }
                if punct_at(&tree.toks, j, '{') {
                    let close = matching_brace(&tree.toks, j);
                    parse_fields(tree, &name, j + 1, close);
                    i = close + 1;
                } else {
                    i = j + 1;
                }
            }
            "enum" => {
                let name = ident_at(&tree.toks, i + 1).unwrap_or("").to_string();
                let line = tree.toks[i].line;
                let mut j = skip_generics(&tree.toks, i + 2);
                while j < hi && !punct_at(&tree.toks, j, '{') {
                    j += 1;
                }
                if j < hi {
                    let close = matching_brace(&tree.toks, j);
                    let variants = parse_variants(&tree.toks, j + 1, close);
                    tree.enums.push(EnumDef {
                        name,
                        variants,
                        line,
                    });
                    i = close + 1;
                } else {
                    i = j;
                }
            }
            _ => {
                // `use`, `const`, `static`, `type`, `pub`, `unsafe`, … —
                // advance; braces in non-item positions are skipped by the
                // stray-brace arm above.
                i += 1;
                // `pub`/`unsafe`/`async`/`default` qualify the next item:
                // keep the pending test attribute alive for them.
                if matches!(
                    word,
                    "pub" | "unsafe" | "async" | "default" | "extern" | "crate"
                ) {
                    continue;
                }
            }
        }
        attr_test = false;
    }
}

/// Parse `name: Type,` fields of a struct body `[lo, hi)`.
fn parse_fields(tree: &mut FileTree, owner: &str, lo: usize, hi: usize) {
    let mut i = lo;
    while i < hi {
        if punct_at(&tree.toks, i, '#') {
            let (next, _) = skip_attr(&tree.toks, i);
            i = next;
            continue;
        }
        if ident_at(&tree.toks, i) == Some("pub") {
            i += 1;
            // `pub(crate)` etc.
            if punct_at(&tree.toks, i, '(') {
                while i < hi && !punct_at(&tree.toks, i, ')') {
                    i += 1;
                }
                i += 1;
            }
            continue;
        }
        let Some(name) = ident_at(&tree.toks, i) else {
            i += 1;
            continue;
        };
        if !punct_at(&tree.toks, i + 1, ':') {
            i += 1;
            continue;
        }
        let line = tree.toks[i].line;
        // Type: tokens until a ',' at zero depth or the struct close.
        let mut j = i + 2;
        let mut angle = 0isize;
        let mut inner = 0isize;
        while j < hi {
            match &tree.toks[j].tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle -= 1,
                Tok::Punct('(' | '[' | '{') => inner += 1,
                Tok::Punct(')' | ']' | '}') => inner -= 1,
                Tok::Punct(',') if angle <= 0 && inner <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        tree.fields.push(Field {
            owner: owner.to_string(),
            name: name.to_string(),
            ty: flatten(&tree.toks, (i + 2, j)),
            line,
        });
        i = j + 1;
    }
}

/// Variant names of an enum body `[lo, hi)`.
fn parse_variants(toks: &[Token], lo: usize, hi: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi {
        if punct_at(toks, i, '#') {
            let (next, _) = skip_attr(toks, i);
            i = next;
            continue;
        }
        if let Some(name) = ident_at(toks, i) {
            out.push(name.to_string());
        }
        // Skip payload and discriminant to the ',' at zero depth.
        let mut depth = 0isize;
        while i < hi {
            match &toks[i].tok {
                Tok::Punct('(' | '[' | '{') => depth += 1,
                Tok::Punct(')' | ']' | '}') => depth -= 1,
                Tok::Punct(',') if depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1;
    }
    out
}

/// Split the `match` whose keyword sits at `kw` into arms. Returns an
/// empty vec if no body brace is found.
pub fn match_arms(toks: &[Token], kw: usize) -> Vec<MatchArm> {
    // Find the body's '{' at zero paren/bracket depth past the scrutinee.
    let mut i = kw + 1;
    let mut depth = 0isize;
    let body_open = loop {
        match toks.get(i).map(|t| &t.tok) {
            None => return Vec::new(),
            Some(Tok::Punct('(' | '[')) => depth += 1,
            Some(Tok::Punct(')' | ']')) => depth -= 1,
            Some(Tok::Punct('{')) if depth == 0 => break i,
            _ => {}
        }
        i += 1;
    };
    let body_close = matching_brace(toks, body_open);
    let mut arms = Vec::new();
    let mut i = body_open + 1;
    while i < body_close {
        // Pattern (+ optional guard): up to `=>` at zero inner depth.
        let pat_start = i;
        let mut inner = 0isize;
        while i < body_close {
            match &toks[i].tok {
                Tok::Punct('(' | '[' | '{') => inner += 1,
                Tok::Punct(')' | ']' | '}') => inner -= 1,
                Tok::Punct('=') if inner == 0 && punct_at(toks, i + 1, '>') => break,
                _ => {}
            }
            i += 1;
        }
        if i >= body_close {
            break;
        }
        let pat = (pat_start, i);
        i += 2; // past '=>'
        let body_start = i;
        let body_end = if punct_at(toks, i, '{') {
            let close = matching_brace(toks, i);
            i = close + 1;
            // Optional trailing comma.
            if punct_at(toks, i, ',') {
                i += 1;
            }
            close + 1
        } else {
            // Expression arm: to the ',' at zero depth or the match close.
            let mut inner = 0isize;
            while i < body_close {
                match &toks[i].tok {
                    Tok::Punct('(' | '[' | '{') => inner += 1,
                    Tok::Punct(')' | ']' | '}') => inner -= 1,
                    Tok::Punct(',') if inner == 0 => break,
                    _ => {}
                }
                i += 1;
            }
            let e = i;
            i += 1; // past the ','
            e
        };
        if pat.1 > pat.0 {
            arms.push(MatchArm {
                pat,
                body: (body_start, body_end),
            });
        }
    }
    arms
}

/// Is the arm pattern a catch-all: `_`, a lone binding identifier, or a
/// tuple of those (`(op, payload)`)? Guarded arms (`x if cond`) still
/// count — the guard does not make the coverage exhaustive.
pub fn is_catch_all_pattern(toks: &[Token], arm: &MatchArm) -> bool {
    let (lo, hi) = arm.pat;
    // Strip a trailing guard: `pat if cond`.
    let mut end = hi;
    let mut depth = 0isize;
    for (j, tok) in toks.iter().enumerate().take(hi).skip(lo) {
        match &tok.tok {
            Tok::Punct('(' | '[' | '{') => depth += 1,
            Tok::Punct(')' | ']' | '}') => depth -= 1,
            Tok::Ident(s) if s == "if" && depth == 0 => {
                end = j;
                break;
            }
            _ => {}
        }
    }
    let range: Vec<&Tok> = toks[lo..end].iter().map(|t| &t.tok).collect();
    let is_binding = |t: &Tok| matches!(t, Tok::Ident(s) if s.chars().next().is_some_and(|c| c.is_lowercase() || c == '_'));
    match range.as_slice() {
        [t] => is_binding(t),
        _ => {
            // `( a , b , … )` of bindings only.
            if !matches!(range.first(), Some(Tok::Punct('('))) {
                return false;
            }
            if !matches!(range.last(), Some(Tok::Punct(')'))) {
                return false;
            }
            range[1..range.len() - 1]
                .iter()
                .all(|t| matches!(t, Tok::Punct(',')) || is_binding(t))
        }
    }
}

/// Does the arm body consist solely of a terminating macro call —
/// `panic!(...)`, `unreachable!(...)`, `todo!(...)`? Such arms are
/// *terminal states*: the transition is handled by declaring it
/// impossible, which PI003/PR001 treat as an audited dead end.
pub fn is_terminal_body(toks: &[Token], arm: &MatchArm) -> bool {
    let (mut lo, hi) = arm.body;
    // Unwrap a `{ ... }` block body.
    if punct_at(toks, lo, '{') && matching_brace(toks, lo) + 1 >= hi {
        lo += 1;
    }
    matches!(ident_at(toks, lo), Some("panic" | "unreachable" | "todo"))
        && punct_at(toks, lo + 1, '!')
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree_of(src: &str) -> FileTree {
        parse("t.rs", lex(src))
    }

    #[test]
    fn fns_with_owner_trait_and_return() {
        let src = r#"
            impl NicCollective for PaperCollective {
                fn on_timer(&mut self, now: SimTime) {}
                fn next_deadline(&self) -> Option<SimTime> { None }
            }
            fn free() -> u64 { 0 }
            fn unit() -> () {}
            trait T { fn sig(&self) -> u32; }
        "#;
        let t = tree_of(src);
        let names: Vec<(&str, Option<&str>, Option<&str>, bool)> = t
            .fns
            .iter()
            .map(|f| {
                (
                    f.name.as_str(),
                    f.owner.as_deref(),
                    f.trait_of.as_deref(),
                    f.returns_value,
                )
            })
            .collect();
        assert_eq!(
            names,
            vec![
                (
                    "on_timer",
                    Some("PaperCollective"),
                    Some("NicCollective"),
                    false
                ),
                (
                    "next_deadline",
                    Some("PaperCollective"),
                    Some("NicCollective"),
                    true
                ),
                ("free", None, None, true),
                ("unit", None, None, false),
                ("sig", None, None, true),
            ]
        );
        assert!(t.fns[4].body.is_none(), "trait sig has no body");
    }

    #[test]
    fn cfg_test_and_test_attr_mark_fns() {
        let src = r#"
            fn prod() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn case() {}
            }
            #[test]
            fn top_level_case() {}
        "#;
        let t = tree_of(src);
        let flags: Vec<(&str, bool)> = t.fns.iter().map(|f| (f.name.as_str(), f.in_test)).collect();
        assert_eq!(
            flags,
            vec![
                ("prod", false),
                ("helper", true),
                ("case", true),
                ("top_level_case", true)
            ]
        );
    }

    #[test]
    fn struct_fields_with_flattened_types() {
        let src = r#"
            pub struct ProfClock {
                epoch: Instant,
                pub samples: Vec<Option<CollKind>>,
            }
            struct Tuple(u32, u64);
        "#;
        let t = tree_of(src);
        assert_eq!(t.fields.len(), 2);
        assert_eq!(t.fields[0].owner, "ProfClock");
        assert_eq!(t.fields[0].name, "epoch");
        assert_eq!(t.fields[0].ty, "Instant");
        assert_eq!(t.fields[1].ty, "Vec<Option<CollKind>>");
    }

    #[test]
    fn enums_and_variants() {
        let src = r#"
            pub enum CollKind {
                Barrier,
                Nack,
                Bcast { value: u64 },
                Gather { base_rank: u32, values: Vec<u64> },
            }
        "#;
        let t = tree_of(src);
        assert_eq!(t.enums.len(), 1);
        assert_eq!(
            t.enums[0].variants,
            vec!["Barrier", "Nack", "Bcast", "Gather"]
        );
    }

    #[test]
    fn match_arms_split_patterns_and_bodies() {
        let src = r#"
            fn f(k: CollKind) -> u32 {
                match k {
                    CollKind::Barrier => 1,
                    CollKind::Nack | CollKind::Ack => { nested(); 2 }
                    (op, payload) => panic!("bad {op:?}"),
                }
            }
        "#;
        let t = tree_of(src);
        let kw = t
            .toks
            .iter()
            .position(|tk| matches!(&tk.tok, Tok::Ident(s) if s == "match"))
            .unwrap();
        let arms = match_arms(&t.toks, kw);
        assert_eq!(arms.len(), 3);
        assert!(!is_catch_all_pattern(&t.toks, &arms[0]));
        assert!(!is_catch_all_pattern(&t.toks, &arms[1]));
        assert!(is_catch_all_pattern(&t.toks, &arms[2]));
        assert!(is_terminal_body(&t.toks, &arms[2]));
        assert!(!is_terminal_body(&t.toks, &arms[0]));
    }

    #[test]
    fn guarded_wildcard_is_catch_all_but_variant_pattern_is_not() {
        let src =
            "fn f(x: E) { match x { _ if cond() => a(), E::V { .. } => b(), other => c(), } }";
        let t = tree_of(src);
        let kw = t
            .toks
            .iter()
            .position(|tk| matches!(&tk.tok, Tok::Ident(s) if s == "match"))
            .unwrap();
        let arms = match_arms(&t.toks, kw);
        assert_eq!(arms.len(), 3);
        assert!(is_catch_all_pattern(&t.toks, &arms[0]));
        assert!(!is_catch_all_pattern(&t.toks, &arms[1]));
        assert!(is_catch_all_pattern(&t.toks, &arms[2]));
        assert!(!is_terminal_body(&t.toks, &arms[2]));
    }
}
