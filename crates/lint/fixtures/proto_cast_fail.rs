//! PI001 fixture: bare narrowing casts in protocol bookkeeping paths.

pub fn pack(epoch: u64, round: usize) -> u32 {
    ((epoch as u32) << 8) | round as u32 //~ PI001 PI001
}

pub fn tag_round(r: usize) -> u16 {
    r as u16 //~ PI001
}

pub fn widening_is_fine(x: u32, y: u16) -> u64 {
    (x as u64) + (y as usize as u64)
}
