//! OB001 fixture: the approved telemetry paths — registry counters and
//! buffer rendering — produce no findings. A `println!` in a comment or a
//! string literal is data, not telemetry.

use std::fmt::Write as _;

fn record(telemetry: &mut Telemetry, events: u64) {
    // println!("tempting, but no") — commented out is fine
    telemetry.add(metric_id!("engine.events"), events);
    telemetry.observe(metric_id!("engine.window.events"), events);
}

fn render(out: &mut String, events: u64) {
    let banner = "println! inside a string is fine";
    let _ = writeln!(out, "{banner}: {events}");
}
