//! Negative fixture: exhaustive ResKind matches pass, as do wildcard
//! matches over unrelated types next to ledger code.

pub fn res_code(r: &ResKind) -> u32 {
    match r {
        ResKind::NicCpu => 1,
        ResKind::DmaEngine => 2,
        ResKind::SendQueue => 3,
        ResKind::PacketPool => 4,
        ResKind::RecvTokens => 5,
        ResKind::ElanEngine => 6,
        ResKind::EventSlot => 7,
        ResKind::LinkPort => 8,
    }
}

pub fn unrelated_unit(unit: u64) -> u64 {
    match unit {
        0 => 1,
        _ => 0,
    }
}

pub fn nested(r: &ResKind, unit: u64) -> u64 {
    match r {
        ResKind::SendQueue => match unit {
            0 => 1,
            _ => 0,
        },
        ResKind::LinkPort => 2,
        ResKind::NicCpu => 3,
        ResKind::DmaEngine => 4,
        ResKind::PacketPool => 5,
        ResKind::RecvTokens => 6,
        ResKind::ElanEngine => 7,
        ResKind::EventSlot => 8,
    }
}
