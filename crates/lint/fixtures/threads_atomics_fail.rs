//! ND005 corpus, atomics half: constructing atomics in sim-visible code.
//! The only audited lock-free protocol is the SPSC mailbox ring in
//! `crates/sim/src/queue.rs`; an `Atomic*::new` anywhere else is the seed
//! of an ad-hoc cross-thread signalling scheme the determinism argument
//! knows nothing about.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

static DONE: AtomicBool = AtomicBool::new(false); //~ ND005

fn bad_counter() -> u64 {
    let hits = AtomicU64::new(0); //~ ND005
    hits.fetch_add(1, Ordering::Relaxed);
    hits.load(Ordering::Relaxed)
}

fn bad_qualified() -> usize {
    let slots = std::sync::atomic::AtomicUsize::new(8); //~ ND005
    slots.load(Ordering::Acquire)
}
