//! PI002 fixture: wildcard arms in SpanEvent/Phase/CausalKind matches
//! would silently swallow newly added variants in exporters.

pub fn phase_code(e: &SpanEvent) -> u32 {
    match e {
        SpanEvent::Fire { .. } => 1,
        SpanEvent::Wire { .. } => 2,
        _ => 0, //~ PI002
    }
}

pub fn guarded(p: &Phase, x: u32) -> u32 {
    match p {
        Phase::Host => 0,
        _ if x > 0 => 1, //~ PI002
        Phase::Wire => 2,
    }
}

pub fn causal_label(k: CausalKind) -> &'static str {
    match k {
        CausalKind::Wire => "wire",
        CausalKind::Nack => "nack",
        _ => "other", //~ PI002
    }
}
