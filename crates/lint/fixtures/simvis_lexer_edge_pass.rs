//! Negative fixture (lexer regression): raw identifiers, multi-hash raw
//! strings, byte raw strings and deeply nested block comments must not
//! leak tokens that look like rule keywords or desync the parser.

pub fn r#loop(r#type: u64) -> u64 {
    // The pre-fix lexer split `r#match` into `r` `#` `match`, leaking a
    // `match` keyword token into pattern scanning.
    let r#match = r#type + 1;
    r#match
}

/* nested /* comment /* mentioning Instant, thread_rng() and
   std::env::var("X") */ still */ closed */

/* star-heavy **/
/*/ tricky open-close /*/ inner */ done */

pub fn raw_strings(ctx: &mut Ctx) -> &'static str {
    ctx.count(1);
    r##"thread_rng() and a "quoted" std::env::var("X") inside"##
}

pub fn byte_raw() -> &'static [u8] {
    br#"for v in set.iter() { HashSet iteration in a byte string }"#
}
