//! Negative fixture: deterministic state, and hash-collection names that
//! appear only in comments, strings and raw strings, must all pass.

use std::collections::BTreeMap;

// A HashMap mentioned in a comment is not a finding.
/* Neither is a HashSet in a block comment, /* even nested */. */

pub struct State<'a> {
    pending: BTreeMap<u64, u64>,
    label: &'a str,
}

impl<'a> State<'a> {
    pub fn new() -> Self {
        State {
            pending: BTreeMap::new(),
            label: "HashMap in a string is fine",
        }
    }

    pub fn raw(&self) -> &'static str {
        r#"HashSet in a raw "quoted" string is fine"#
    }

    pub fn ch(&self) -> char {
        'H'
    }
}
