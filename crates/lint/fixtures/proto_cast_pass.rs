//! Negative fixture: checked conversions in bookkeeping paths pass.

pub fn pack(epoch: u64, round: usize) -> u32 {
    let epoch = u32::try_from(epoch).expect("epoch exceeds the 24-bit tag window");
    let round = u32::try_from(round).expect("round exceeds the 8-bit tag window");
    (epoch << 8) | round
}

pub fn widen(x: u32) -> u64 {
    u64::from(x)
}
