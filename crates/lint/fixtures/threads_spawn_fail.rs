//! ND005 corpus: hand-rolled concurrency in sim-visible code. Worker
//! threads belong to the parallel engine (`crates/sim/src/parallel.rs`);
//! anywhere else they reintroduce scheduling nondeterminism.

fn bad_spawn() {
    let h = std::thread::spawn(|| 42); //~ ND005
    let _ = h.join();
}

fn bad_scope(xs: &mut [u32]) {
    std::thread::scope(|s| { //~ ND005
        s.spawn(|| xs.len());
    });
}

fn bad_channel() {
    let (tx, rx) = std::sync::mpsc::channel::<u32>(); //~ ND005
    tx.send(1).ok();
    let _ = rx.recv();
}
