//! Flow-sensitivity fixture for ND001: the *same* wall clock is legal
//! while it only feeds metrics, and flagged the moment its taint reaches
//! a sim-visible sink — with the finding at the sink, not the source.
//! This is the ProfClock pattern that used to need 4 allowlist entries.

pub struct ProfClock {
    epoch: Instant,
    total_ns: u64,
}

impl ProfClock {
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    pub fn lap(&mut self) {
        // Metrics-only use of the taint: accumulated into host-side
        // bookkeeping, never into sim time. Not a finding.
        self.total_ns += self.now_ns();
    }
}

pub fn drive(clock: &ProfClock, ctx: &mut Ctx) {
    // The taint crosses a method call (`now_ns` is resolved through the
    // receiver's declared type) and a local binding before hitting the
    // engine sink — the finding lands on the sink line.
    let t = clock.now_ns();
    ctx.send_at(SimTime::from_ns(t), 7); //~ ND001
}
