//! ND001/ND002/ND004 fixture: entropy RNGs and environment reads are
//! flagged at the keyword (they are nondeterministic wherever the value
//! goes); wall-clock taint is flagged only where it *reaches a
//! sim-visible sink*, reported at the sink line — taint propagates
//! through bindings and call chains to get there.

pub fn wall_clock() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn stamp(ctx: &mut Ctx) {
    let t0 = wall_clock();
    let ns = elapsed_ns(t0);
    ctx.schedule_at(SimTime::from_ns(ns), 0); //~ ND001
}

fn elapsed_ns(t: std::time::Instant) -> u64 {
    t.elapsed().as_nanos() as u64
}

pub fn system_time(ctx: &mut Ctx) {
    let wall = SystemTime::now();
    ctx.count(since_epoch(wall)); //~ ND001
}

fn since_epoch(t: SystemTime) -> u64 {
    t.duration_since(UNIX_EPOCH).unwrap_or_default().as_secs()
}

pub fn entropy() -> u64 {
    let mut rng = thread_rng(); //~ ND002
    let seeded = SimRng::from_entropy(); //~ ND002
    rng.next() ^ seeded.next()
}

pub fn environment() -> Option<String> {
    std::env::var("NICBAR_MODE").ok() //~ ND004 ND004
}
