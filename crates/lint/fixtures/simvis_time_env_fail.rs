//! ND001/ND002/ND004 fixture: wall clocks, entropy RNGs and environment
//! reads in sim-visible code. `std::time::Instant` counts twice on one
//! line (the path and the type name are separate occurrences).

pub fn wall_clock() -> std::time::Instant { //~ ND001 ND001
    std::time::Instant::now() //~ ND001 ND001
}

pub fn system_time() -> u64 {
    let _t = SystemTime::now(); //~ ND001
    0
}

pub fn entropy() -> u64 {
    let mut rng = thread_rng(); //~ ND002
    let seeded = SimRng::from_entropy(); //~ ND002
    rng.next() ^ seeded.next()
}

pub fn environment() -> Option<String> {
    std::env::var("NICBAR_MODE").ok() //~ ND004 ND004
}
