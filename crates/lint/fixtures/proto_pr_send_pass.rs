//! Negative PR002 fixture: first transmissions that record the payload,
//! retransmissions (`retx: true`), and NACK control traffic are all
//! legal.

pub struct Emitter {
    round: usize,
}

impl Emitter {
    pub fn broadcast(&mut self, live: &mut RoundState, dst: u32, pkt: CollPacket, actions: &mut ActionBuf) {
        live.sent_payloads[self.round] = Some(pkt.clone());
        actions.push(CollAction::Send {
            dst,
            pkt,
            retx: false,
            cause: Cause::Fanout,
        });
    }

    pub fn service_nack(&mut self, dst: u32, pkt: CollPacket, actions: &mut ActionBuf) {
        actions.push(CollAction::Send {
            dst,
            pkt,
            retx: true,
            cause: Cause::NackService,
        });
    }

    pub fn complain(&mut self, dst: u32, actions: &mut ActionBuf) {
        actions.push(CollAction::Send {
            dst,
            pkt: CollPacket { kind: CollKind::Nack, round: self.round },
            retx: false,
            cause: Cause::Timeout,
        });
    }
}
