//! OB001 fixture: ad-hoc print telemetry in engine code must be flagged;
//! prints inside `#[cfg(test)]` are fine.

fn report_progress(windows: u64, events: u64) {
    println!("windows: {windows}"); //~ OB001
    eprintln!("events: {events}"); //~ OB001
    print!("partial"); //~ OB001
    eprint!("partial err"); //~ OB001
    let _ = dbg!(windows); //~ OB001
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("this is a test, printing is allowed");
    }
}
