//! PI003 fixture: panicking calls on the NIC hot path.

pub fn pop(q: &mut Vec<u32>) -> u32 {
    q.pop().unwrap() //~ PI003
}

pub fn lookup(v: Option<u32>) -> u32 {
    v.expect("present") //~ PI003
}

pub fn reject() {
    panic!("unexpected event"); //~ PI003
}
