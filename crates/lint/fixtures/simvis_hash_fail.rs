//! ND003 fixture: hash-order *iteration* in sim-visible state. Insertion
//! and membership tests are deterministic and legal; anything observing
//! iteration order (which could reach event order) is flagged at the
//! observation site.

use std::collections::{HashMap, HashSet};

pub struct State {
    pending: HashMap<u64, u64>,
    seen: HashSet<u64>,
}

impl State {
    pub fn insert(&mut self, k: u64, v: u64) {
        self.pending.insert(k, v);
        self.seen.insert(k);
    }

    pub fn has(&self, k: u64) -> bool {
        self.seen.contains(&k)
    }

    pub fn total(&self) -> u64 {
        let mut acc = 0;
        for (_k, v) in self.pending.iter() { //~ ND003
            acc += v;
        }
        acc
    }

    pub fn first_key(&self) -> Option<u64> {
        self.pending.keys().next().copied() //~ ND003
    }

    pub fn forget(&mut self) {
        self.seen.drain(); //~ ND003
    }
}

pub fn order_sum(set: &HashSet<u64>) -> u64 {
    let mut acc = 0;
    for v in set { //~ ND003
        acc += v;
    }
    acc
}
