//! ND003 fixture: hash-ordered collections in sim-visible state must be
//! flagged at every occurrence (use sites included).

use std::collections::HashMap; //~ ND003
use std::collections::HashSet; //~ ND003

pub struct State {
    pending: HashMap<u64, u64>, //~ ND003
    seen: HashSet<u64>, //~ ND003
}

impl State {
    pub fn new() -> Self {
        State {
            pending: HashMap::new(), //~ ND003
            seen: HashSet::new(), //~ ND003
        }
    }
}
