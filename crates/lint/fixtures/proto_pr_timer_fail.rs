//! PR003 fixture: a NicCollective timeout handler that neither emits a
//! NACK, reaches a terminal/completion state, nor delegates is a silent
//! stall — the protocol's liveness argument rests on timeouts always
//! making progress.

pub struct StuckCollective {
    ticks: u64,
}

impl NicCollective for StuckCollective {
    fn on_timer(&mut self, now: SimTime, actions: &mut ActionBuf) { //~ PR003
        // Bookkeeping only: no Nack, no completion, no delegation.
        self.ticks += 1;
        let _ = now;
        let _ = actions;
    }
}
