//! PR002 fixture: a first-transmission send (`retx: false`, not a NACK)
//! must record the payload in `sent_payloads` somewhere in the same
//! function, or the receiver-driven NACK path can never service a
//! retransmission for it.

pub struct Emitter {
    round: usize,
}

impl Emitter {
    pub fn broadcast(&mut self, dst: u32, pkt: CollPacket, actions: &mut ActionBuf) {
        actions.push(CollAction::Send { //~ PR002
            dst,
            pkt,
            retx: false,
            cause: Cause::Fanout,
        });
    }
}
