//! ND005 corpus, clean side: querying the host's parallelism and naming
//! threads in comments or strings is fine — only spawning threads or
//! creating channels is concurrency.

fn core_count() -> usize {
    // std::thread::spawn would be flagged here; asking how many cores the
    // host has is not concurrency.
    std::thread::available_parallelism().map_or(1, usize::from)
}

fn describe() -> &'static str {
    "the parallel engine calls thread::scope internally"
}
