//! Negative fixture: debug_assert bodies and #[cfg(test)] modules are
//! exempt from PI003, `unwrap_or`-style total methods never match, and a
//! catch-all arm whose whole body is panic!/unreachable! is an audited
//! terminal dead end (PR001 keeps it honest).

pub fn pop(q: &mut Vec<u32>) -> Option<u32> {
    debug_assert!(!q.is_empty(), "queue underflow");
    q.pop()
}

pub fn checked(v: Option<u32>) -> u32 {
    debug_assert_eq!(v.map(|x| x + 1).unwrap(), 1);
    v.unwrap_or(0)
}

pub fn dispatch(msg: GmEvent) -> u32 {
    match msg {
        GmEvent::Doorbell(d) => d.rank,
        GmEvent::Wire(p) => p.src,
        other => panic!("NIC dispatch got unexpected event {other:?}"),
    }
}

pub fn classify(op: ThreadOp) -> u32 {
    match op {
        ThreadOp::Poll => 0,
        _ => unreachable!("decoder rejects unknown ops"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let w: Option<u32> = None;
        assert!(std::panic::catch_unwind(|| w.expect("boom")).is_err());
    }
}
