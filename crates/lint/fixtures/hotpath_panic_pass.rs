//! Negative fixture: debug_assert bodies and #[cfg(test)] modules are
//! exempt from PI003, and `unwrap_or`-style total methods never match.

pub fn pop(q: &mut Vec<u32>) -> Option<u32> {
    debug_assert!(!q.is_empty(), "queue underflow");
    q.pop()
}

pub fn checked(v: Option<u32>) -> u32 {
    debug_assert_eq!(v.map(|x| x + 1).unwrap(), 1);
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let w: Option<u32> = None;
        assert!(std::panic::catch_unwind(|| w.expect("boom")).is_err());
    }
}
