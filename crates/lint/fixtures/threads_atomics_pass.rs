//! ND005 corpus, atomics clean side: *operating on* an atomic someone
//! else constructed is fine — the rule fires at the constructor, where
//! the audited-protocol question is decided. Mentioning `Atomic*::new`
//! in comments or strings is also fine.

use std::sync::atomic::{AtomicU64, Ordering};

fn bump(counter: &AtomicU64) -> u64 {
    // AtomicU64::new would be flagged here; incrementing a handle the
    // SPSC queue handed us is not constructing a new protocol.
    counter.fetch_add(1, Ordering::Relaxed)
}

fn describe() -> &'static str {
    "the ring calls AtomicUsize::new for its head and tail"
}
