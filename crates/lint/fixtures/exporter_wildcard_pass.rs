//! Negative fixture: exhaustive SpanEvent matches, wildcard matches over
//! unrelated types, and tuple-position wildcards all pass.

pub fn phase_code(e: &SpanEvent) -> u32 {
    match e {
        SpanEvent::Fire { .. } => 1,
        SpanEvent::Wire { .. } => 2,
        SpanEvent::Arrive { .. } => 3,
    }
}

pub fn unrelated(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => 0,
    }
}

pub fn tuple_positions(e: &SpanEvent, x: u32) -> u32 {
    match (e, x) {
        (SpanEvent::Fire { .. }, _) => 1,
        (SpanEvent::Wire { .. }, n) => n,
        (SpanEvent::Arrive { .. }, _) => 3,
    }
}

pub fn nested(e: &SpanEvent, x: u32) -> u32 {
    match e {
        SpanEvent::Fire { .. } => match x {
            0 => 1,
            _ => 0,
        },
        SpanEvent::Wire { .. } => 2,
    }
}

pub fn causal_label(k: CausalKind) -> &'static str {
    match k {
        CausalKind::Wire => "wire",
        CausalKind::Nack => "nack",
        CausalKind::Retransmit => "retransmit",
    }
}
