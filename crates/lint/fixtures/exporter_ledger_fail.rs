//! PI002 fixture (occupancy ledger): wildcard arms in ResKind matches
//! would silently lump newly added contended resources into a catch-all
//! bucket in interference reports.

pub fn res_code(r: &ResKind) -> u32 {
    match r {
        ResKind::NicCpu => 1,
        ResKind::DmaEngine => 2,
        _ => 0, //~ PI002
    }
}

pub fn guarded(r: &ResKind, busy: bool) -> &'static str {
    match r {
        ResKind::LinkPort => "port",
        _ if busy => "busy", //~ PI002
        ResKind::ElanEngine => "engine",
    }
}

pub fn tuple_wildcard(r: &ResKind, unit: u64) -> u64 {
    match (r, unit) {
        (ResKind::SendQueue, u) => u,
        _ => 0, //~ PI002
    }
}
