//! PR001 fixture: a catch-all arm in a match over a protocol state-machine
//! enum silently swallows variants added later. Either enumerate every
//! variant or make the arm a terminal (panic!/unreachable!) dead end.

pub fn label(kind: &CollKind) -> u32 {
    match kind {
        CollKind::Barrier => 0,
        CollKind::Nack => 1,
        _ => 2, //~ PR001
    }
}

pub fn route(ev: GmEvent, fallback: u32) -> u32 {
    match ev {
        GmEvent::Doorbell(d) => d.rank,
        other => fallback, //~ PR001
    }
}
