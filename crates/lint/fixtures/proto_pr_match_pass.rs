//! Negative PR001 fixture: exhaustive matches over protocol enums,
//! terminal catch-alls, and catch-alls over non-protocol enums are all
//! legal.

pub fn label(kind: &CollKind) -> u32 {
    match kind {
        CollKind::Barrier => 0,
        CollKind::Bcast { .. } => 1,
        CollKind::Reduce { .. } => 2,
        CollKind::Gather { .. } => 3,
        CollKind::AllToAll { .. } => 4,
        CollKind::Nack => 5,
    }
}

pub fn route(ev: GmEvent) -> u32 {
    match ev {
        GmEvent::Doorbell(d) => d.rank,
        other => panic!("unroutable NIC event {other:?}"),
    }
}

pub fn spin(state: LocalPhase, fallback: u32) -> u32 {
    // LocalPhase is not a protocol state-machine enum; a defaulting
    // catch-all is fine here.
    match state {
        LocalPhase::Warm => 1,
        _ => fallback,
    }
}
