//! Mailbox-path microbenchmark: the cross-shard message hand-off that the
//! parallel engine drives once per window, measured both ways —
//!
//! * `mutex`: all producers share one `Mutex<Vec<u64>>` and the consumer
//!   swap-drains it — the pre-SPSC mailbox design;
//! * `spsc`: each producer owns a [`nicbar_sim::SpscRing`] and the
//!   consumer drains the rings round-robin — the engine's current
//!   per-pair topology.
//!
//! Producer counts 1–8 mirror the shard counts the figure binaries run
//! at. On a single hardware thread the contrast collapses into a
//! context-switch benchmark; the interesting numbers come from ≥8-thread
//! hosts, where the mutex variant serialises on the lock while the rings
//! stay wait-free. `engine_sweep --quick` prints the same comparison as a
//! one-shot informational report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nicbar_sim::SpscRing;
use std::sync::Mutex;

/// Items each producer pushes per measured transfer. Small enough that a
/// sample stays in the low milliseconds even single-threaded.
const ITEMS: u64 = 20_000;
const RING_CAPACITY: usize = 1024;

/// One full transfer through a shared `Mutex<Vec>`: `producers` threads
/// push, the bench thread swap-drains until every item arrived.
fn mutex_transfer(producers: usize) -> u64 {
    let shared: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let total = producers as u64 * ITEMS;
    let mut received = 0u64;
    std::thread::scope(|s| {
        for p in 0..producers {
            let shared = &shared;
            s.spawn(move || {
                for i in 0..ITEMS {
                    shared.lock().expect("mailbox mutex").push(p as u64 ^ i);
                }
            });
        }
        let mut drained = Vec::new();
        while received < total {
            {
                let mut guard = shared.lock().expect("mailbox mutex");
                std::mem::swap(&mut *guard, &mut drained);
            }
            received += drained.len() as u64;
            drained.clear();
            if received < total {
                std::thread::yield_now();
            }
        }
    });
    received
}

/// One full transfer through per-producer SPSC rings: each producer owns
/// a ring, the bench thread drains all rings round-robin.
fn spsc_transfer(producers: usize) -> u64 {
    let rings: Vec<SpscRing<u64>> = (0..producers)
        .map(|_| SpscRing::new(RING_CAPACITY))
        .collect();
    let total = producers as u64 * ITEMS;
    let mut received = 0u64;
    std::thread::scope(|s| {
        for (p, ring) in rings.iter().enumerate() {
            s.spawn(move || {
                for i in 0..ITEMS {
                    let mut v = p as u64 ^ i;
                    while let Err(back) = ring.push(v) {
                        v = back;
                        std::thread::yield_now();
                    }
                }
            });
        }
        while received < total {
            let mut progressed = false;
            for ring in &rings {
                while ring.pop().is_some() {
                    received += 1;
                    progressed = true;
                }
            }
            if !progressed {
                std::thread::yield_now();
            }
        }
    });
    received
}

fn bench_mailbox(c: &mut Criterion) {
    for producers in [1usize, 2, 4, 8] {
        let mut g = c.benchmark_group(format!("mailbox_{producers}p"));
        g.throughput(Throughput::Elements(producers as u64 * ITEMS));
        // Thread spawn/join dominates tiny samples; keep the sample count
        // modest so a full run stays in seconds.
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from("mutex"), &producers, |b, &p| {
            b.iter(|| mutex_transfer(p));
        });
        g.bench_with_input(BenchmarkId::from("spsc"), &producers, |b, &p| {
            b.iter(|| spsc_transfer(p));
        });
        g.finish();
    }
}

criterion_group!(benches, bench_mailbox);
criterion_main!(benches);
