//! Typed protocol events and per-operation flight recording.
//!
//! The trace layer (see [`crate::trace`]) historically carried free-form
//! `(label, a, b)` word pairs whose meaning lived in comments at each emit
//! site and in hand-written decoders (`timeline.rs`). This module replaces
//! the payload with a typed [`SpanEvent`] enum over the protocol phases the
//! paper's latency decomposition cares about — enqueue, fire, wire, arrive,
//! notify, nack, retransmit — plus begin/end markers for a collective
//! operation keyed by `(group, seq)`.
//!
//! A [`FlightRecorder`] consumes the same event stream and folds it into
//! per-operation *spans*: for every `(group, seq)` pair it tracks the wall
//! window from the first `OpBegin` to the last `OpEnd` and attributes every
//! intervening segment of simulated time to the phase of the event that
//! ended it. The per-span phase sums therefore add up to the span's
//! end-to-end latency *exactly*, which is what makes the breakdown tables
//! trustworthy. Closed spans feed log2 histograms ([`crate::hist`]) named
//! `flight.op_total` and `flight.phase.<name>`.
//!
//! Both the trace ring and the recorder are off by default; the engine
//! guards emission behind a single pre-computed branch per delivery so the
//! disabled path costs nothing measurable (checked by `engine_sweep`).

use crate::hist::Histograms;
use crate::time::SimTime;
use std::fmt;

/// A protocol phase that simulated time can be attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Host-side bookkeeping between operation begin/end markers.
    Host,
    /// A send sat behind earlier tokens in a NIC send queue.
    Enqueue,
    /// A NIC unit launched a packet (DMA descriptor fire / bypass send).
    Fire,
    /// A packet crossed the interconnect.
    Wire,
    /// A packet arrived and was processed by the receiving NIC.
    Arrive,
    /// The NIC notified the host that the operation completed.
    Notify,
    /// Receiver-driven flow control sent a NACK.
    Nack,
    /// A sender retransmitted after a NACK or timeout.
    Retransmit,
}

/// Number of distinct [`Phase`]s.
pub const NUM_PHASES: usize = 8;

impl Phase {
    /// All phases, in display order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Host,
        Phase::Enqueue,
        Phase::Fire,
        Phase::Wire,
        Phase::Arrive,
        Phase::Notify,
        Phase::Nack,
        Phase::Retransmit,
    ];

    /// Stable lowercase name (also the trace label of the matching event).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Host => "host",
            Phase::Enqueue => "enqueue",
            Phase::Fire => "fire",
            Phase::Wire => "wire",
            Phase::Arrive => "arrive",
            Phase::Notify => "notify",
            Phase::Nack => "nack",
            Phase::Retransmit => "retransmit",
        }
    }

    /// Dense index into per-span phase accumulators.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Histogram name for this phase's per-span latency contribution.
    pub fn hist_name(self) -> &'static str {
        match self {
            Phase::Host => "flight.phase.host",
            Phase::Enqueue => "flight.phase.enqueue",
            Phase::Fire => "flight.phase.fire",
            Phase::Wire => "flight.phase.wire",
            Phase::Arrive => "flight.phase.arrive",
            Phase::Notify => "flight.phase.notify",
            Phase::Nack => "flight.phase.nack",
            Phase::Retransmit => "flight.phase.retransmit",
        }
    }
}

/// A typed trace event. The first seven variants map one-to-one onto the
/// [`Phase`]s of the paper's latency decomposition; `OpBegin`/`OpEnd`
/// bracket one collective operation per participant; `Raw` preserves the
/// legacy free-form `(label, a, b)` emission for ad-hoc debugging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanEvent {
    /// Legacy free-form record; carries no phase.
    Raw {
        /// Static label identifying the event kind.
        label: &'static str,
        /// First payload word.
        a: u64,
        /// Second payload word.
        b: u64,
    },
    /// One participant entered collective operation `(group, seq)`.
    OpBegin {
        /// Group identifier (backend-specific encoding).
        group: u64,
        /// Operation sequence number / epoch within the group.
        seq: u64,
    },
    /// One participant observed completion of `(group, seq)`.
    OpEnd {
        /// Group identifier (backend-specific encoding).
        group: u64,
        /// Operation sequence number / epoch within the group.
        seq: u64,
    },
    /// A send was queued behind `depth` earlier tokens for node `dst`.
    Enqueue {
        /// Destination node.
        dst: u64,
        /// Queue depth in front of this token.
        depth: u64,
    },
    /// NIC unit `unit` launched a packet towards node `dst`.
    Fire {
        /// Launching unit (DMA descriptor id, group id, ...).
        unit: u64,
        /// Destination node.
        dst: u64,
    },
    /// A packet of `bytes` wire bytes left node `src` for node `dst`.
    Wire {
        /// Source node.
        src: u64,
        /// Destination node.
        dst: u64,
        /// Wire bytes including headers.
        bytes: u64,
    },
    /// A packet from node `src` arrived and was accepted.
    Arrive {
        /// Source node.
        src: u64,
        /// Backend-specific detail (remote event id, epoch, ...).
        info: u64,
    },
    /// The NIC raised a host completion (event id / cookie pair).
    Notify {
        /// Notifying unit (event id, group id, ...).
        unit: u64,
        /// Completion cookie delivered to the host.
        cookie: u64,
    },
    /// Receiver-driven flow control NACKed node `dst`.
    Nack {
        /// Node being NACKed.
        dst: u64,
        /// Protocol round / epoch the NACK refers to.
        round: u64,
    },
    /// A packet was retransmitted towards node `dst`.
    Retransmit {
        /// Destination of the retransmission.
        dst: u64,
        /// Protocol round / sequence being retransmitted.
        round: u64,
    },
}

impl SpanEvent {
    /// Stable label for filtering (`Trace::with_label`). Typed variants use
    /// their phase name; op markers use `"op.begin"` / `"op.end"`.
    pub fn label(&self) -> &'static str {
        match self {
            SpanEvent::Raw { label, .. } => label,
            SpanEvent::OpBegin { .. } => "op.begin",
            SpanEvent::OpEnd { .. } => "op.end",
            SpanEvent::Enqueue { .. } => "enqueue",
            SpanEvent::Fire { .. } => "fire",
            SpanEvent::Wire { .. } => "wire",
            SpanEvent::Arrive { .. } => "arrive",
            SpanEvent::Notify { .. } => "notify",
            SpanEvent::Nack { .. } => "nack",
            SpanEvent::Retransmit { .. } => "retransmit",
        }
    }

    /// The phase simulated time spent reaching this event is attributed to.
    /// `Raw` events carry no phase; op markers attribute to [`Phase::Host`].
    #[inline]
    pub fn phase(&self) -> Option<Phase> {
        match self {
            SpanEvent::Raw { .. } => None,
            SpanEvent::OpBegin { .. } | SpanEvent::OpEnd { .. } => Some(Phase::Host),
            SpanEvent::Enqueue { .. } => Some(Phase::Enqueue),
            SpanEvent::Fire { .. } => Some(Phase::Fire),
            SpanEvent::Wire { .. } => Some(Phase::Wire),
            SpanEvent::Arrive { .. } => Some(Phase::Arrive),
            SpanEvent::Notify { .. } => Some(Phase::Notify),
            SpanEvent::Nack { .. } => Some(Phase::Nack),
            SpanEvent::Retransmit { .. } => Some(Phase::Retransmit),
        }
    }

    /// First payload word, matching the legacy `(a, b)` view.
    pub fn a(&self) -> u64 {
        match *self {
            SpanEvent::Raw { a, .. } => a,
            SpanEvent::OpBegin { group, .. } | SpanEvent::OpEnd { group, .. } => group,
            SpanEvent::Enqueue { dst, .. } => dst,
            SpanEvent::Fire { unit, .. } => unit,
            SpanEvent::Wire { src, .. } => src,
            SpanEvent::Arrive { src, .. } => src,
            SpanEvent::Notify { unit, .. } => unit,
            SpanEvent::Nack { dst, .. } => dst,
            SpanEvent::Retransmit { dst, .. } => dst,
        }
    }

    /// Second payload word, matching the legacy `(a, b)` view.
    pub fn b(&self) -> u64 {
        match *self {
            SpanEvent::Raw { b, .. } => b,
            SpanEvent::OpBegin { seq, .. } | SpanEvent::OpEnd { seq, .. } => seq,
            SpanEvent::Enqueue { depth, .. } => depth,
            SpanEvent::Fire { dst, .. } => dst,
            SpanEvent::Wire { dst, .. } => dst,
            SpanEvent::Arrive { info, .. } => info,
            SpanEvent::Notify { cookie, .. } => cookie,
            SpanEvent::Nack { round, .. } => round,
            SpanEvent::Retransmit { round, .. } => round,
        }
    }

    /// Human-readable detail string, shared by `timeline` and `flight` so
    /// the decoding lives next to the event definition instead of being
    /// duplicated in every exporter.
    pub fn describe(&self) -> String {
        match *self {
            SpanEvent::Raw { label, a, b } => format!("{label} a={a} b={b}"),
            SpanEvent::OpBegin { group, seq } => {
                format!("enter op seq {seq} on group {group:#x}")
            }
            SpanEvent::OpEnd { group, seq } => {
                format!("complete op seq {seq} on group {group:#x}")
            }
            SpanEvent::Enqueue { dst, depth } => {
                format!("send to node {dst} queued behind {depth} token(s)")
            }
            SpanEvent::Fire { unit, dst } => format!("unit {unit} fires packet to node {dst}"),
            SpanEvent::Wire { src, dst, bytes } => {
                format!("{bytes}B on the wire, node {src} -> node {dst}")
            }
            SpanEvent::Arrive { src, info } => {
                if info == u64::MAX {
                    format!("packet from node {src} arrives")
                } else {
                    format!("packet from node {src} arrives (info {info})")
                }
            }
            SpanEvent::Notify { unit, cookie } => {
                format!("host notified by unit {unit} (cookie {cookie:#x})")
            }
            SpanEvent::Nack { dst, round } => format!("NACK to node {dst} for round {round}"),
            SpanEvent::Retransmit { dst, round } => {
                format!("retransmit round {round} to node {dst}")
            }
        }
    }
}

/// Summary of one closed operation span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanSummary {
    /// Group the operation ran on.
    pub group: u64,
    /// Operation sequence number within the group.
    pub seq: u64,
    /// Time of the first `OpBegin`.
    pub begin: SimTime,
    /// Time of the last `OpEnd`.
    pub end: SimTime,
    /// Nanoseconds attributed to each [`Phase`], indexed by `Phase::index`.
    /// The entries sum to `end - begin` exactly.
    pub phase_ns: [u64; NUM_PHASES],
    /// Number of events folded into this span (including op markers).
    pub events: u64,
}

impl SpanSummary {
    /// End-to-end latency of the operation.
    pub fn total(&self) -> SimTime {
        self.end.saturating_sub(self.begin)
    }

    /// Nanoseconds attributed to `phase`.
    pub fn phase(&self, phase: Phase) -> u64 {
        self.phase_ns[phase.index()]
    }
}

/// An operation currently in flight.
#[derive(Clone, Copy, Debug)]
struct OpenSpan {
    group: u64,
    seq: u64,
    begin: SimTime,
    /// Time of the last event attributed to this span; the next event's
    /// segment is `[last, now]`.
    last: SimTime,
    begun: u32,
    ended: u32,
    phase_ns: [u64; NUM_PHASES],
    events: u64,
}

/// Folds the typed event stream into per-operation phase breakdowns and
/// latency histograms. Disabled by default; when disabled, `observe` is a
/// single predicted branch.
pub struct FlightRecorder {
    enabled: bool,
    /// Maximum number of closed spans retained; further closes only feed
    /// the histograms and bump `dropped`.
    capacity: usize,
    /// Expected participants per operation; when set, a span closes on the
    /// `participants`-th `OpEnd` instead of waiting for `ended == begun`.
    participants: Option<u32>,
    open: Vec<OpenSpan>,
    completed: Vec<SpanSummary>,
    dropped: u64,
    /// Phase-carrying events seen while no span was open (not attributable).
    orphaned: u64,
    hists: Histograms,
}

impl FlightRecorder {
    /// Default bound on retained closed spans.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Create a disabled recorder (the engine default).
    pub fn disabled() -> Self {
        FlightRecorder {
            enabled: false,
            capacity: 0,
            participants: None,
            open: Vec::new(),
            completed: Vec::new(),
            dropped: 0,
            orphaned: 0,
            hists: Histograms::new(),
        }
    }

    /// Create an enabled recorder retaining up to `capacity` closed spans.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "recorder capacity must be non-zero");
        FlightRecorder {
            enabled: true,
            capacity,
            participants: None,
            open: Vec::new(),
            completed: Vec::new(),
            dropped: 0,
            orphaned: 0,
            hists: Histograms::new(),
        }
    }

    /// Is recording active?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enable recording (with [`Self::DEFAULT_CAPACITY`] if previously
    /// disabled).
    pub fn enable(&mut self) {
        if self.capacity == 0 {
            self.capacity = Self::DEFAULT_CAPACITY;
        }
        self.enabled = true;
    }

    /// Declare how many participants join each operation. With `n` set, a
    /// span closes on its `n`-th `OpEnd`; without it, a span closes once
    /// every participant that began has ended (which only resolves at a
    /// quiescent point for lock-step workloads).
    pub fn set_participants(&mut self, n: u32) {
        assert!(n > 0, "participants must be non-zero");
        self.participants = Some(n);
    }

    /// Fold one event into the recorder. `time` must be non-decreasing
    /// across calls (engine delivery order guarantees this).
    #[inline]
    pub fn observe(&mut self, time: SimTime, event: &SpanEvent) {
        if !self.enabled {
            return;
        }
        self.observe_slow(time, event);
    }

    fn observe_slow(&mut self, time: SimTime, event: &SpanEvent) {
        match *event {
            SpanEvent::OpBegin { group, seq } => {
                if let Some(span) = self.find(group, seq) {
                    span.attribute(time, Phase::Host);
                    span.begun += 1;
                } else {
                    self.open.push(OpenSpan {
                        group,
                        seq,
                        begin: time,
                        last: time,
                        begun: 1,
                        ended: 0,
                        phase_ns: [0; NUM_PHASES],
                        events: 1,
                    });
                }
            }
            SpanEvent::OpEnd { group, seq } => {
                let participants = self.participants;
                let Some(idx) = self
                    .open
                    .iter()
                    .position(|s| s.group == group && s.seq == seq)
                else {
                    // An end without a begin: the recorder was enabled
                    // mid-operation. Not attributable.
                    self.orphaned += 1;
                    return;
                };
                let span = &mut self.open[idx];
                span.attribute(time, Phase::Host);
                span.ended += 1;
                let done = match participants {
                    Some(p) => span.ended >= p,
                    None => span.ended >= span.begun,
                };
                if done {
                    let span = self.open.swap_remove(idx);
                    self.close(span, time);
                }
            }
            ref ev => {
                let Some(phase) = ev.phase() else { return };
                // Attribute to the earliest-begun open span: with epoch
                // banking at most two operations overlap, and the elder one
                // owns the wall clock until it closes.
                if let Some(span) = self.open.iter_mut().min_by_key(|s| s.begin) {
                    span.attribute(time, phase);
                } else {
                    self.orphaned += 1;
                }
            }
        }
    }

    fn find(&mut self, group: u64, seq: u64) -> Option<&mut OpenSpan> {
        self.open
            .iter_mut()
            .find(|s| s.group == group && s.seq == seq)
    }

    fn close(&mut self, span: OpenSpan, end: SimTime) {
        let summary = SpanSummary {
            group: span.group,
            seq: span.seq,
            begin: span.begin,
            end,
            phase_ns: span.phase_ns,
            events: span.events,
        };
        self.hists
            .record_id(crate::hist_id!("flight.op_total"), summary.total().as_ns());
        for phase in Phase::ALL {
            let ns = summary.phase(phase);
            if ns > 0 {
                self.hists.record(phase.hist_name(), ns);
            }
        }
        if self.completed.len() < self.capacity {
            self.completed.push(summary);
        } else {
            self.dropped += 1;
        }
    }

    /// Closed spans, in completion order (bounded by the capacity).
    pub fn completed(&self) -> &[SpanSummary] {
        &self.completed
    }

    /// Number of operations still open.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Closed spans discarded because the retention buffer was full (their
    /// latencies still reached the histograms).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Phase events observed while no span was open.
    pub fn orphaned(&self) -> u64 {
        self.orphaned
    }

    /// Latency histograms (`flight.op_total`, `flight.phase.<name>`).
    pub fn hists(&self) -> &Histograms {
        &self.hists
    }

    /// Drop all state (keeps enabled flag and participants).
    pub fn clear(&mut self) {
        self.open.clear();
        self.completed.clear();
        self.dropped = 0;
        self.orphaned = 0;
        self.hists.clear();
    }
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FlightRecorder(enabled={}, open={}, completed={}, dropped={}, orphaned={})",
            self.enabled,
            self.open.len(),
            self.completed.len(),
            self.dropped,
            self.orphaned
        )
    }
}

impl OpenSpan {
    /// Charge the segment since the previous event to `phase`.
    #[inline]
    fn attribute(&mut self, now: SimTime, phase: Phase) {
        self.phase_ns[phase.index()] += now.saturating_sub(self.last).as_ns();
        self.last = now;
        self.events += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    #[test]
    fn labels_and_phases_line_up() {
        for phase in Phase::ALL {
            assert!(phase.hist_name().ends_with(phase.name()));
        }
        assert_eq!(SpanEvent::Fire { unit: 1, dst: 2 }.label(), "fire");
        assert_eq!(
            SpanEvent::Fire { unit: 1, dst: 2 }.phase(),
            Some(Phase::Fire)
        );
        assert_eq!(
            SpanEvent::Raw {
                label: "x",
                a: 0,
                b: 0
            }
            .phase(),
            None
        );
        assert_eq!(SpanEvent::OpBegin { group: 1, seq: 2 }.label(), "op.begin");
    }

    #[test]
    fn legacy_word_view() {
        let ev = SpanEvent::Enqueue { dst: 3, depth: 7 };
        assert_eq!((ev.a(), ev.b()), (3, 7));
        let ev = SpanEvent::Raw {
            label: "raw",
            a: 11,
            b: 22,
        };
        assert_eq!((ev.a(), ev.b()), (11, 22));
    }

    #[test]
    fn describe_mentions_payload() {
        let s = SpanEvent::Wire {
            src: 1,
            dst: 2,
            bytes: 64,
        }
        .describe();
        assert!(
            s.contains("64B") && s.contains("node 1") && s.contains("node 2"),
            "{s}"
        );
    }

    #[test]
    fn disabled_recorder_ignores_everything() {
        let mut r = FlightRecorder::disabled();
        r.observe(t(0), &SpanEvent::OpBegin { group: 1, seq: 0 });
        r.observe(t(10), &SpanEvent::OpEnd { group: 1, seq: 0 });
        assert!(r.completed().is_empty());
        assert_eq!(r.open_count(), 0);
    }

    #[test]
    fn phase_sums_equal_total_exactly() {
        let mut r = FlightRecorder::with_capacity(16);
        r.set_participants(2);
        r.observe(t(0), &SpanEvent::OpBegin { group: 5, seq: 0 });
        r.observe(t(10), &SpanEvent::OpBegin { group: 5, seq: 0 });
        r.observe(t(30), &SpanEvent::Fire { unit: 0, dst: 1 });
        r.observe(
            t(70),
            &SpanEvent::Wire {
                src: 0,
                dst: 1,
                bytes: 32,
            },
        );
        r.observe(t(90), &SpanEvent::Arrive { src: 0, info: 0 });
        r.observe(t(100), &SpanEvent::Notify { unit: 9, cookie: 1 });
        r.observe(t(110), &SpanEvent::OpEnd { group: 5, seq: 0 });
        r.observe(t(120), &SpanEvent::OpEnd { group: 5, seq: 0 });

        assert_eq!(r.open_count(), 0);
        let spans = r.completed();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.total(), t(120));
        assert_eq!(s.phase(Phase::Host), 10 + 10 + 10);
        assert_eq!(s.phase(Phase::Fire), 20);
        assert_eq!(s.phase(Phase::Wire), 40);
        assert_eq!(s.phase(Phase::Arrive), 20);
        assert_eq!(s.phase(Phase::Notify), 10);
        let sum: u64 = s.phase_ns.iter().sum();
        assert_eq!(sum, s.total().as_ns());
    }

    #[test]
    fn closes_without_participants_when_all_enders_arrive() {
        let mut r = FlightRecorder::with_capacity(4);
        r.observe(t(0), &SpanEvent::OpBegin { group: 1, seq: 7 });
        r.observe(t(1), &SpanEvent::OpBegin { group: 1, seq: 7 });
        r.observe(t(5), &SpanEvent::OpEnd { group: 1, seq: 7 });
        assert_eq!(r.open_count(), 1);
        r.observe(t(9), &SpanEvent::OpEnd { group: 1, seq: 7 });
        assert_eq!(r.open_count(), 0);
        assert_eq!(r.completed().len(), 1);
        assert_eq!(r.completed()[0].seq, 7);
    }

    #[test]
    fn overlapping_ops_attribute_to_the_elder() {
        let mut r = FlightRecorder::with_capacity(4);
        r.set_participants(1);
        r.observe(t(0), &SpanEvent::OpBegin { group: 1, seq: 0 });
        // A banked next-epoch op opens while seq 0 is still in flight.
        r.observe(t(4), &SpanEvent::OpBegin { group: 1, seq: 1 });
        r.observe(t(10), &SpanEvent::Fire { unit: 0, dst: 1 });
        r.observe(t(20), &SpanEvent::OpEnd { group: 1, seq: 0 });
        r.observe(t(50), &SpanEvent::OpEnd { group: 1, seq: 1 });
        let spans = r.completed();
        assert_eq!(spans.len(), 2);
        // seq 0 owned the 0..10 fire segment.
        assert_eq!(spans[0].phase(Phase::Fire), 10);
        assert_eq!(spans[0].total(), t(20));
        // seq 1's whole window still adds up.
        let sum: u64 = spans[1].phase_ns.iter().sum();
        assert_eq!(sum, spans[1].total().as_ns());
    }

    #[test]
    fn orphaned_events_are_counted_not_attributed() {
        let mut r = FlightRecorder::with_capacity(4);
        r.observe(t(3), &SpanEvent::Fire { unit: 0, dst: 1 });
        r.observe(t(4), &SpanEvent::OpEnd { group: 1, seq: 0 });
        assert_eq!(r.orphaned(), 2);
        assert!(r.completed().is_empty());
    }

    #[test]
    fn capacity_bounds_retained_spans_but_histograms_see_all() {
        let mut r = FlightRecorder::with_capacity(2);
        r.set_participants(1);
        for seq in 0..5u64 {
            r.observe(t(seq * 100), &SpanEvent::OpBegin { group: 9, seq });
            r.observe(t(seq * 100 + 10), &SpanEvent::OpEnd { group: 9, seq });
        }
        assert_eq!(r.completed().len(), 2);
        assert_eq!(r.dropped(), 3);
        assert_eq!(r.hists().get("flight.op_total").unwrap().count(), 5);
    }

    #[test]
    fn raw_events_do_not_touch_spans() {
        let mut r = FlightRecorder::with_capacity(4);
        r.set_participants(1);
        r.observe(t(0), &SpanEvent::OpBegin { group: 1, seq: 0 });
        r.observe(
            t(5),
            &SpanEvent::Raw {
                label: "debug",
                a: 0,
                b: 0,
            },
        );
        r.observe(t(10), &SpanEvent::OpEnd { group: 1, seq: 0 });
        let s = &r.completed()[0];
        // The raw event neither advanced `last` nor counted as an event.
        assert_eq!(s.phase(Phase::Host), 10);
        assert_eq!(s.events, 2);
    }

    #[test]
    fn clear_resets_but_keeps_enabled() {
        let mut r = FlightRecorder::with_capacity(4);
        r.set_participants(1);
        r.observe(t(0), &SpanEvent::OpBegin { group: 1, seq: 0 });
        r.observe(t(10), &SpanEvent::OpEnd { group: 1, seq: 0 });
        r.clear();
        assert!(r.completed().is_empty());
        assert!(r.is_enabled());
        assert!(r.hists().is_empty());
    }
}
