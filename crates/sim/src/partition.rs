//! Component → shard partitioning for the parallel engine.
//!
//! The parallel engine ([`crate::parallel`]) assigns every component to
//! exactly one worker shard. Correctness only needs the *co-location*
//! invariant: components that exchange zero-lookahead messages (a host and
//! its own NIC, a NIC and its receive port) must share a shard, because
//! only cross-fabric messages carry the link latency that funds the
//! conservative lookahead window. Both cluster backends lay components out
//! as `[hosts 0..n][NICs n..2n]`, so "everything belonging to node `j`"
//! is simply every component id congruent to `j` mod `n` — and nodes are
//! then split into `shards` contiguous, balanced ranges.
//!
//! Contiguous ranges (rather than round-robin) keep each shard's dissemination
//! peers — which are `rank ± 2^k` — partially local at the low rounds, which
//! slightly reduces cross-shard mail volume.
//!
//! Two refinements close the profiler loop (see `DESIGN.md`, "Performance
//! II"):
//!
//! * [`LatencyMatrix`] — the per-*pair* minimum cross-shard message latency.
//!   The engine's conservative window used to be funded by one global
//!   minimum; with the matrix each shard gets its own granted window end
//!   `W(j) = min over i≠j of (EAT(i) + L(i, j))`, where the
//!   earliest-activation time `EAT(i) = min over m of (next_m + dist(m, i))`
//!   bounds wake-up relay chains through the shortest-path closure
//!   ([`LatencyMatrix::closure`]) — so a pair of far-apart shards stops
//!   re-synchronizing at the worst-case (nearest-pair) rate, and a
//!   momentarily idle shard still constrains the peers that could wake it
//!   (see `crate::parallel` for the derivation).
//! * [`PartitionSel`] / [`ShardMap::balanced_by_weight`] — profile-guided
//!   partitioning: per-node busy-time weights (measured by a prior
//!   `engine_prof` run) are split into contiguous ranges minimizing the
//!   bottleneck shard load, then cut positions slide (within the bottleneck
//!   bound) to the cheapest measured cross-traffic boundaries.

use crate::engine::ComponentId;
use crate::time::SimTime;
use std::sync::Arc;

/// A complete component → shard assignment.
#[derive(Clone, Debug)]
pub struct ShardMap {
    table: Vec<u32>,
    shards: u32,
}

/// Shard of node `node` when `nodes` nodes are split into `shards`
/// balanced contiguous ranges: `node * shards / nodes`.
#[inline]
pub fn node_shard(node: usize, nodes: usize, shards: usize) -> u32 {
    debug_assert!(node < nodes);
    ((node as u64 * shards as u64) / nodes as u64) as u32
}

impl ShardMap {
    /// Build a map for `components` component slots over `nodes` nodes,
    /// with `node_of` giving each component's owning node. Nodes are split
    /// into `shards` balanced contiguous ranges; `shards` is clamped to
    /// `[1, nodes]`.
    pub fn by_node(
        components: usize,
        nodes: usize,
        shards: usize,
        node_of: impl Fn(usize) -> usize,
    ) -> ShardMap {
        assert!(nodes > 0, "a cluster needs at least one node");
        let shards = shards.clamp(1, nodes);
        let table = (0..components)
            .map(|c| node_shard(node_of(c), nodes, shards))
            .collect();
        ShardMap {
            table,
            shards: shards as u32,
        }
    }

    /// The trivial single-shard map (every component on shard 0).
    pub fn single(components: usize) -> ShardMap {
        ShardMap {
            table: vec![0; components],
            shards: 1,
        }
    }

    /// Number of shards this map distributes over.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// Shard owning component `id`.
    #[inline]
    pub fn shard_of(&self, id: ComponentId) -> u32 {
        self.table[id.0]
    }

    /// The raw component → shard table.
    pub fn table(&self) -> &[u32] {
        &self.table
    }

    /// Components assigned to each shard, shard-index order. The engine
    /// self-profiler reports these next to per-shard busy times so a
    /// partition imbalance is visible at a glance.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shards as usize];
        for &s in &self.table {
            sizes[s as usize] += 1;
        }
        sizes
    }

    pub(crate) fn into_table(self) -> Vec<u32> {
        self.table
    }

    /// Profile-guided partition: split `nodes` nodes into `shards`
    /// contiguous ranges minimizing the maximum per-shard weight, then
    /// slide each cut — within that bottleneck bound — to the position
    /// with the smallest boundary cost.
    ///
    /// `weights[i]` is the measured cost of profile node `i` (per-shard
    /// busy time spread over the shard's nodes); `boundary_cost[i]` is the
    /// measured cross-shard traffic a cut *before* node `i` would sever.
    /// Both are sampled onto this run's node count (`weights` from a
    /// 4096-node profile steers a 1024-node run), so a profile taken at
    /// one scale transfers to nearby scales. Empty slices mean "uniform" /
    /// "free" respectively. Zero weights are clamped to 1 so every node
    /// keeps a nonzero cost and ranges stay non-empty.
    ///
    /// The result is deterministic: same inputs, same table. `shards` is
    /// clamped to `[1, nodes]` exactly as in [`ShardMap::by_node`].
    pub fn balanced_by_weight(
        components: usize,
        nodes: usize,
        shards: usize,
        node_of: impl Fn(usize) -> usize,
        weights: &[u64],
        boundary_cost: &[u64],
    ) -> ShardMap {
        assert!(nodes > 0, "a cluster needs at least one node");
        let shards = shards.clamp(1, nodes);
        // Sample the profile-indexed vectors onto this run's nodes.
        let sample = |v: &[u64], j: usize| -> u64 {
            if v.is_empty() {
                0
            } else {
                v[j * v.len() / nodes]
            }
        };
        let w: Vec<u64> = (0..nodes).map(|j| sample(weights, j).max(1)).collect();
        // prefix[i] = total weight of nodes 0..i.
        let mut prefix = vec![0u64; nodes + 1];
        for j in 0..nodes {
            prefix[j + 1] = prefix[j] + w[j];
        }
        let range_w = |a: usize, b: usize| prefix[b] - prefix[a];
        // Binary-search the smallest bottleneck B for which a greedy split
        // needs at most `shards` ranges (each range's weight <= B). The
        // greedy range count is monotone in B, and splitting a range never
        // raises its weight, so "greedy needs <= shards ranges" is exactly
        // feasibility for an exactly-`shards` partition once every shard is
        // guaranteed a node (nodes >= shards by the clamp above).
        let feasible = |bound: u64| -> bool {
            let mut ranges = 1usize;
            let mut start = 0usize;
            for j in 0..nodes {
                if range_w(start, j + 1) > bound {
                    ranges += 1;
                    start = j;
                    if ranges > shards {
                        return false;
                    }
                }
            }
            true
        };
        let mut lo = w.iter().copied().max().unwrap_or(1);
        let mut hi = prefix[nodes];
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if feasible(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let bound = lo;
        // Construct the cuts: each range takes the longest prefix that fits
        // under the bound while leaving at least one node for every shard
        // still to come (the final shard takes the rest — within the bound,
        // by the feasibility of `bound` and the exchange argument).
        let mut cuts = vec![0usize; shards + 1];
        cuts[shards] = nodes;
        let mut start = 0usize;
        for (s, cut) in cuts.iter_mut().enumerate().take(shards.saturating_sub(1)) {
            *cut = start;
            let mut end = start + 1;
            while end < nodes
                && nodes - (end + 1) >= shards - (s + 1)
                && range_w(start, end + 1) <= bound
            {
                end += 1;
            }
            start = end;
        }
        if shards > 1 {
            cuts[shards - 1] = start;
        }
        debug_assert!(
            (0..shards).all(|s| range_w(cuts[s], cuts[s + 1]) <= bound),
            "greedy fill exceeded the bottleneck bound"
        );
        // Refinement: slide each cut, within the bottleneck bound, to the
        // cheapest measured boundary (every position is equally free when
        // no boundary costs were given), breaking ties toward the more
        // balanced neighbour pair and then the leftmost position. The
        // greedy fill above takes maximal prefixes, so without this pass a
        // uniform profile would end in one starved trailing range.
        // Processed left to right with the updated neighbours —
        // deterministic.
        for c in 1..shards {
            let (left, right) = (cuts[c - 1], cuts[c + 1]);
            let score = |q: usize| -> (u64, u64) {
                (
                    sample(boundary_cost, q),
                    range_w(left, q).max(range_w(q, right)),
                )
            };
            let mut best = cuts[c];
            let mut best_score = (u64::MAX, u64::MAX);
            for q in (left + 1)..right {
                if range_w(left, q) > bound || range_w(q, right) > bound {
                    continue;
                }
                let s = score(q);
                if s < best_score {
                    best = q;
                    best_score = s;
                }
            }
            cuts[c] = best;
        }
        // Node -> shard via the cut positions, then component -> shard.
        let mut node_to_shard = vec![0u32; nodes];
        for s in 0..shards {
            for slot in node_to_shard.iter_mut().take(cuts[s + 1]).skip(cuts[s]) {
                *slot = s as u32;
            }
        }
        let table = (0..components).map(|c| node_to_shard[node_of(c)]).collect();
        ShardMap {
            table,
            shards: shards as u32,
        }
    }
}

/// How a cluster builder should map components to shards.
///
/// Carried by run configs (`RunCfg` in the driver layer) and threaded into
/// the builders; `--partition profile=<path>` on the fig binaries parses an
/// `engine_prof.json` into the [`PartitionSel::Weighted`] form.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum PartitionSel {
    /// Balanced contiguous node ranges (the static default).
    #[default]
    Contiguous,
    /// Profile-guided: per-node weights and per-boundary cut costs from a
    /// prior profiled run (see [`ShardMap::balanced_by_weight`]).
    Weighted {
        /// Per profile-node busy-time weight.
        weights: Arc<[u64]>,
        /// Per profile-node boundary (cut-traffic) cost.
        boundary_cost: Arc<[u64]>,
    },
}

impl PartitionSel {
    /// Build the shard map this selection describes (same contract as
    /// [`ShardMap::by_node`]).
    pub fn map(
        &self,
        components: usize,
        nodes: usize,
        shards: usize,
        node_of: impl Fn(usize) -> usize,
    ) -> ShardMap {
        match self {
            PartitionSel::Contiguous => ShardMap::by_node(components, nodes, shards, node_of),
            PartitionSel::Weighted {
                weights,
                boundary_cost,
            } => ShardMap::balanced_by_weight(
                components,
                nodes,
                shards,
                node_of,
                weights,
                boundary_cost,
            ),
        }
    }
}

/// Per-pair minimum cross-shard message latency, in nanoseconds: the
/// conservative lookahead funding the parallel engine's per-shard windows.
/// `get(i, j)` must lower-bound the latency of *every* message a component
/// on shard `i` can send to a component on shard `j` — overstating it
/// breaks the byte-identity guarantee (and trips the debug deposit assert).
#[derive(Clone, Debug)]
pub struct LatencyMatrix {
    shards: usize,
    /// Flat `shards * shards`, ns. Diagonal entries are unused (intra-shard
    /// sends never cross a window boundary) and stored as `u64::MAX`.
    ns: Vec<u64>,
    /// Minimum off-diagonal entry (the old global lookahead).
    min_ns: u64,
}

impl LatencyMatrix {
    /// Every pair bounded by the same global minimum — always sound, since
    /// the scalar is a lower bound of each pair's true minimum.
    pub fn uniform(shards: usize, min: SimTime) -> Self {
        assert!(shards > 0, "a latency matrix needs at least one shard");
        assert!(!min.is_zero(), "parallel engine needs lookahead > 0");
        let mut ns = vec![min.as_ns(); shards * shards];
        for i in 0..shards {
            ns[i * shards + i] = u64::MAX;
        }
        LatencyMatrix {
            shards,
            ns,
            min_ns: min.as_ns(),
        }
    }

    /// Exact per-pair bounds: `f(i, j)` is the minimum latency of any
    /// message from shard `i` to shard `j` (`i != j`). Panics if any pair's
    /// bound is zero — a zero bound admits no parallel window between the
    /// pair.
    pub fn from_fn(shards: usize, mut f: impl FnMut(usize, usize) -> SimTime) -> Self {
        assert!(shards > 1, "per-pair bounds need at least two shards");
        let mut ns = vec![u64::MAX; shards * shards];
        let mut min_ns = u64::MAX;
        for i in 0..shards {
            for j in 0..shards {
                if i == j {
                    continue;
                }
                let v = f(i, j).as_ns();
                assert!(v > 0, "zero lookahead between shards {i} and {j}");
                ns[i * shards + j] = v;
                min_ns = min_ns.min(v);
            }
        }
        LatencyMatrix { shards, ns, min_ns }
    }

    /// Minimum latency of a message from shard `from` to shard `to`.
    #[inline]
    pub fn get(&self, from: usize, to: usize) -> u64 {
        self.ns[from * self.shards + to]
    }

    /// The smallest cross-pair bound — what the old global-window protocol
    /// used for every pair.
    pub fn min_ns(&self) -> u64 {
        self.min_ns
    }

    /// Shard count this matrix covers.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// All-pairs shortest-path closure of the latency graph, flat
    /// row-major (`dist[i * shards + j]`), with a zero diagonal.
    ///
    /// `dist(i, j)` is the minimum total latency of any *relay chain* of
    /// messages from shard `i` to shard `j` — possibly via intermediate
    /// shards — and is what the parallel engine's window computation needs
    /// to bound wake-up cascades: a shard whose own queue is empty can
    /// still be activated by a message relayed through any path, no
    /// earlier than the sending shard's earliest event plus `dist`.
    pub fn closure(&self) -> Vec<u64> {
        let k = self.shards;
        let mut dist: Vec<u64> = self.ns.clone();
        for i in 0..k {
            dist[i * k + i] = 0;
        }
        for via in 0..k {
            for i in 0..k {
                let base = dist[i * k + via];
                if base == u64::MAX {
                    continue;
                }
                for j in 0..k {
                    let relayed = base.saturating_add(dist[via * k + j]);
                    if relayed < dist[i * k + j] {
                        dist[i * k + j] = relayed;
                    }
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_and_balanced() {
        let n = 10;
        let map = ShardMap::by_node(2 * n, n, 4, |c| c % n);
        // Host j and NIC j share a shard.
        for j in 0..n {
            assert_eq!(
                map.shard_of(ComponentId(j)),
                map.shard_of(ComponentId(n + j)),
                "host and NIC of node {j} split across shards"
            );
        }
        // Shards are contiguous in node order and non-decreasing.
        let shards: Vec<u32> = (0..n).map(|j| map.shard_of(ComponentId(j))).collect();
        assert!(shards.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*shards.last().unwrap(), 3);
        // Balanced: every shard owns 2 or 3 of the 10 nodes.
        for s in 0..4u32 {
            let owned = shards.iter().filter(|&&x| x == s).count();
            assert!((2..=3).contains(&owned), "shard {s} owns {owned} nodes");
        }
    }

    #[test]
    fn shard_count_is_clamped_to_nodes() {
        let map = ShardMap::by_node(4, 2, 16, |c| c % 2);
        assert_eq!(map.shards(), 2);
        let map = ShardMap::by_node(4, 2, 0, |c| c % 2);
        assert_eq!(map.shards(), 1);
        assert!(map.table().iter().all(|&s| s == 0));
    }

    #[test]
    fn single_puts_everything_on_shard_zero() {
        let map = ShardMap::single(7);
        assert_eq!(map.shards(), 1);
        assert!(map.table().iter().all(|&s| s == 0));
    }

    /// Check the structural invariants every weighted partition must hold:
    /// covers all components exactly once, contiguous non-decreasing in
    /// node order, every shard non-empty, host/NIC co-location preserved.
    fn assert_valid(map: &ShardMap, n: usize, shards: usize) {
        assert_eq!(map.shards(), shards);
        assert_eq!(map.table().len(), 2 * n);
        for j in 0..n {
            assert_eq!(
                map.shard_of(ComponentId(j)),
                map.shard_of(ComponentId(n + j)),
                "host and NIC of node {j} split across shards"
            );
        }
        let node_shards: Vec<u32> = (0..n).map(|j| map.shard_of(ComponentId(j))).collect();
        assert!(
            node_shards
                .windows(2)
                .all(|w| w[0] <= w[1] && w[1] <= w[0] + 1),
            "not contiguous: {node_shards:?}"
        );
        assert_eq!(node_shards[0], 0);
        assert_eq!(*node_shards.last().unwrap() as usize, shards - 1);
    }

    #[test]
    fn weighted_uniform_matches_balanced_contiguous_shape() {
        let n = 10;
        let map = ShardMap::balanced_by_weight(2 * n, n, 4, |c| c % n, &[], &[]);
        assert_valid(&map, n, 4);
        let sizes = map.shard_sizes();
        assert!(sizes.iter().all(|&s| s == 4 || s == 6), "{sizes:?}");
    }

    #[test]
    fn weighted_skew_shrinks_the_hot_range() {
        // Node 0 carries half the total weight: it must sit alone on its
        // shard, and the bottleneck must equal its weight.
        let n = 8;
        let weights = [70u64, 10, 10, 10, 10, 10, 10, 10];
        let map = ShardMap::balanced_by_weight(2 * n, n, 4, |c| c % n, &weights, &[]);
        assert_valid(&map, n, 4);
        let mut load = [0u64; 4];
        for (j, &w) in weights.iter().enumerate() {
            load[map.shard_of(ComponentId(j)) as usize] += w;
        }
        assert_eq!(
            map.shard_sizes()[0],
            2,
            "hot node 0 should own shard 0 alone (host + NIC)"
        );
        assert_eq!(load.iter().copied().max().unwrap(), 70, "{load:?}");
    }

    #[test]
    fn weighted_uneven_rank_ranges() {
        // 7 nodes over 3 shards: ranges must be uneven (3/2/2-ish) but
        // still contiguous and total-covering.
        let n = 7;
        let map = ShardMap::balanced_by_weight(2 * n, n, 3, |c| c % n, &[1; 7], &[]);
        assert_valid(&map, n, 3);
        assert_eq!(map.shard_sizes().iter().sum::<usize>(), 2 * n);
    }

    #[test]
    fn weighted_shards_clamped_and_single_rank_shards() {
        // shards > ranks clamps to ranks; nodes == shards pins one node
        // per shard.
        let n = 4;
        let map = ShardMap::balanced_by_weight(2 * n, n, 16, |c| c % n, &[3, 1, 4, 1], &[]);
        assert_valid(&map, n, 4);
        assert!(map.shard_sizes().iter().all(|&s| s == 2), "one node each");
    }

    #[test]
    fn boundary_cost_steers_cuts_within_the_bound() {
        // Uniform unit weights, 9 nodes over 2 shards: the bottleneck
        // bound is 5, so a cut before node 4 or node 5 both satisfy it.
        // Greedy picks 5; a free boundary before node 4 must pull the cut
        // there, but a free boundary before node 3 must NOT (ranges 3/6
        // would break the bound).
        let n = 9;
        let mut bc = [10u64; 9];
        bc[4] = 0;
        bc[3] = 0;
        let map = ShardMap::balanced_by_weight(2 * n, n, 2, |c| c % n, &[1; 9], &bc);
        assert_valid(&map, n, 2);
        assert_eq!(
            map.shard_sizes(),
            vec![8, 10],
            "cut should slide to the free in-bound boundary before node 4"
        );
    }

    #[test]
    fn weighted_partition_is_deterministic_and_rescales() {
        // Round-trip: a synthetic 16-entry profile steers an 8-node run;
        // two invocations agree byte-for-byte and cover all ranks once.
        let n = 8;
        let weights: Vec<u64> = (0..16).map(|i| 1 + (i % 5)).collect();
        let bc: Vec<u64> = (0..16).map(|i| (i * 7) % 11).collect();
        let a = ShardMap::balanced_by_weight(2 * n, n, 3, |c| c % n, &weights, &bc);
        let b = ShardMap::balanced_by_weight(2 * n, n, 3, |c| c % n, &weights, &bc);
        assert_eq!(
            a.table(),
            b.table(),
            "profile-guided map must be deterministic"
        );
        assert_valid(&a, n, 3);
        assert_eq!(
            a.table().len(),
            2 * n,
            "every component assigned exactly once"
        );
        for c in 0..2 * n {
            assert!(a.shard_of(ComponentId(c)) < 3);
        }
    }

    #[test]
    fn partition_sel_dispatches() {
        let n = 6;
        let contiguous = PartitionSel::Contiguous.map(2 * n, n, 2, |c| c % n);
        let by_node = ShardMap::by_node(2 * n, n, 2, |c| c % n);
        assert_eq!(contiguous.table(), by_node.table());
        let weighted = PartitionSel::Weighted {
            weights: vec![5, 1, 1, 1, 1, 1].into(),
            boundary_cost: Vec::new().into(),
        }
        .map(2 * n, n, 2, |c| c % n);
        assert_valid(&weighted, n, 2);
    }

    #[test]
    fn latency_matrix_uniform_and_exact() {
        let u = LatencyMatrix::uniform(3, SimTime::from_ns(450));
        assert_eq!(u.shards(), 3);
        assert_eq!(u.min_ns(), 450);
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    assert_eq!(u.get(i, j), 450);
                }
            }
        }
        let m = LatencyMatrix::from_fn(3, |i, j| {
            SimTime::from_ns(100 + 100 * (i.abs_diff(j) as u64))
        });
        assert_eq!(m.get(0, 1), 200);
        assert_eq!(m.get(0, 2), 300);
        assert_eq!(m.min_ns(), 200);
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn latency_matrix_rejects_zero() {
        LatencyMatrix::uniform(2, SimTime::ZERO);
    }

    #[test]
    fn latency_closure_takes_relay_shortcuts() {
        // Direct 0→2 costs 900 but relaying through 1 costs 200 + 200:
        // the closure must take the two-hop path, keep the cheaper direct
        // entries, and zero the diagonal.
        let m = LatencyMatrix::from_fn(3, |i, j| {
            SimTime::from_ns(if i.abs_diff(j) == 2 { 900 } else { 200 })
        });
        let d = m.closure();
        let at = |i: usize, j: usize| d[i * 3 + j];
        assert_eq!(at(0, 2), 400, "relay via shard 1 beats direct 900");
        assert_eq!(at(2, 0), 400);
        assert_eq!(at(0, 1), 200);
        for i in 0..3 {
            assert_eq!(d[i * 3 + i], 0, "diagonal is self-distance");
        }
        // Uniform matrices are already metric: closure == direct + zeros.
        let u = LatencyMatrix::uniform(3, SimTime::from_ns(450));
        let du = u.closure();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(du[i * 3 + j], if i == j { 0 } else { 450 });
            }
        }
    }

    #[test]
    fn shard_sizes_sum_to_component_count() {
        let n = 10;
        let map = ShardMap::by_node(2 * n, n, 4, |c| c % n);
        let sizes = map.shard_sizes();
        assert_eq!(sizes.len(), 4);
        assert_eq!(sizes.iter().sum::<usize>(), 2 * n);
        // Balanced contiguous split: 2 or 3 nodes (4 or 6 components) each.
        assert!(sizes.iter().all(|&s| s == 4 || s == 6), "{sizes:?}");
        assert_eq!(ShardMap::single(7).shard_sizes(), vec![7]);
    }
}
