//! Component → shard partitioning for the parallel engine.
//!
//! The parallel engine ([`crate::parallel`]) assigns every component to
//! exactly one worker shard. Correctness only needs the *co-location*
//! invariant: components that exchange zero-lookahead messages (a host and
//! its own NIC, a NIC and its receive port) must share a shard, because
//! only cross-fabric messages carry the link latency that funds the
//! conservative lookahead window. Both cluster backends lay components out
//! as `[hosts 0..n][NICs n..2n]`, so "everything belonging to node `j`"
//! is simply every component id congruent to `j` mod `n` — and nodes are
//! then split into `shards` contiguous, balanced ranges.
//!
//! Contiguous ranges (rather than round-robin) keep each shard's dissemination
//! peers — which are `rank ± 2^k` — partially local at the low rounds, which
//! slightly reduces cross-shard mail volume.

use crate::engine::ComponentId;

/// A complete component → shard assignment.
#[derive(Clone, Debug)]
pub struct ShardMap {
    table: Vec<u32>,
    shards: u32,
}

/// Shard of node `node` when `nodes` nodes are split into `shards`
/// balanced contiguous ranges: `node * shards / nodes`.
#[inline]
pub fn node_shard(node: usize, nodes: usize, shards: usize) -> u32 {
    debug_assert!(node < nodes);
    ((node as u64 * shards as u64) / nodes as u64) as u32
}

impl ShardMap {
    /// Build a map for `components` component slots over `nodes` nodes,
    /// with `node_of` giving each component's owning node. Nodes are split
    /// into `shards` balanced contiguous ranges; `shards` is clamped to
    /// `[1, nodes]`.
    pub fn by_node(
        components: usize,
        nodes: usize,
        shards: usize,
        node_of: impl Fn(usize) -> usize,
    ) -> ShardMap {
        assert!(nodes > 0, "a cluster needs at least one node");
        let shards = shards.clamp(1, nodes);
        let table = (0..components)
            .map(|c| node_shard(node_of(c), nodes, shards))
            .collect();
        ShardMap {
            table,
            shards: shards as u32,
        }
    }

    /// The trivial single-shard map (every component on shard 0).
    pub fn single(components: usize) -> ShardMap {
        ShardMap {
            table: vec![0; components],
            shards: 1,
        }
    }

    /// Number of shards this map distributes over.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// Shard owning component `id`.
    #[inline]
    pub fn shard_of(&self, id: ComponentId) -> u32 {
        self.table[id.0]
    }

    /// The raw component → shard table.
    pub fn table(&self) -> &[u32] {
        &self.table
    }

    /// Components assigned to each shard, shard-index order. The engine
    /// self-profiler reports these next to per-shard busy times so a
    /// partition imbalance is visible at a glance.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shards as usize];
        for &s in &self.table {
            sizes[s as usize] += 1;
        }
        sizes
    }

    pub(crate) fn into_table(self) -> Vec<u32> {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_and_balanced() {
        let n = 10;
        let map = ShardMap::by_node(2 * n, n, 4, |c| c % n);
        // Host j and NIC j share a shard.
        for j in 0..n {
            assert_eq!(
                map.shard_of(ComponentId(j)),
                map.shard_of(ComponentId(n + j)),
                "host and NIC of node {j} split across shards"
            );
        }
        // Shards are contiguous in node order and non-decreasing.
        let shards: Vec<u32> = (0..n).map(|j| map.shard_of(ComponentId(j))).collect();
        assert!(shards.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*shards.last().unwrap(), 3);
        // Balanced: every shard owns 2 or 3 of the 10 nodes.
        for s in 0..4u32 {
            let owned = shards.iter().filter(|&&x| x == s).count();
            assert!((2..=3).contains(&owned), "shard {s} owns {owned} nodes");
        }
    }

    #[test]
    fn shard_count_is_clamped_to_nodes() {
        let map = ShardMap::by_node(4, 2, 16, |c| c % 2);
        assert_eq!(map.shards(), 2);
        let map = ShardMap::by_node(4, 2, 0, |c| c % 2);
        assert_eq!(map.shards(), 1);
        assert!(map.table().iter().all(|&s| s == 0));
    }

    #[test]
    fn single_puts_everything_on_shard_zero() {
        let map = ShardMap::single(7);
        assert_eq!(map.shards(), 1);
        assert!(map.table().iter().all(|&s| s == 0));
    }

    #[test]
    fn shard_sizes_sum_to_component_count() {
        let n = 10;
        let map = ShardMap::by_node(2 * n, n, 4, |c| c % n);
        let sizes = map.shard_sizes();
        assert_eq!(sizes.len(), 4);
        assert_eq!(sizes.iter().sum::<usize>(), 2 * n);
        // Balanced contiguous split: 2 or 3 nodes (4 or 6 components) each.
        assert!(sizes.iter().all(|&s| s == 4 || s == 6), "{sizes:?}");
        assert_eq!(ShardMap::single(7).shard_sizes(), vec![7]);
    }
}
