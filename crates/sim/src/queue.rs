//! Event queues: the hot-path timing wheel (default), the indexed 4-ary
//! heap, and the reference binary heap they replaced.
//!
//! All queues order events by a *content-based* 128-bit key: simulated time
//! in the high 64 bits and a `(source, per-source count)` subkey in the low
//! 64 (see `crate::engine`). The key is a pure function of *who scheduled
//! the event and when*, never of global insertion order — so the same event
//! gets the same key whether the simulation runs on one thread or is
//! sharded across many, and the pop order is the total order of keys
//! regardless of the order pushes happened to arrive in. That property is
//! what lets the parallel engine (`crate::parallel`) drain per-shard queues
//! independently and still reproduce the sequential engine byte for byte.
//! The classic [`std::collections::BinaryHeap`] queue is kept selectable
//! (see [`SchedulerKind`]) purely as the differential-testing and
//! benchmarking baseline.
//!
//! ## Why a timing wheel
//!
//! Simulated delays here are nanoseconds to a few microseconds, so almost
//! every event lands inside a small sliding window. [`WheelQueue`] exploits
//! that: push links a slab node onto a per-nanosecond bucket kept sorted by
//! subkey (almost always a tail append), pop unlinks the first node of the
//! first occupied bucket (found by a 2048-bit bitmap scan), and a depth-1
//! bypass short-circuits ping-pong workloads entirely. Events beyond the
//! window fall back to the indexed heap and re-bucket when the window
//! advances.
//!
//! ## Why the 4-ary indexed heap (the overflow and alternate scheduler)
//!
//! * **Shallower**: a 4-ary heap has half the depth of a binary heap, so a
//!   pop does half the levels of sift-down work; the four children of node
//!   `i` (`4i+1..4i+4`) sit in adjacent cache lines.
//! * **Indexed**: keys (16 bytes) live in one dense vector and are all the
//!   sift loops ever touch; message payloads sit in a slab addressed by a
//!   parallel `u32` slot vector, so growing `M` never slows the comparisons.
//! * **Batched**: [`IndexedHeap::push_batch`] appends a whole burst of
//!   events and restores the heap in one pass, using Floyd's bottom-up
//!   heapify when the batch dominates the existing contents.

use crate::engine::ComponentId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::Ordering as AtomicOrd;

/// Which event-queue implementation an engine runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulerKind {
    /// The hot-path timing wheel (default): O(1) push/pop for events inside
    /// a sliding time window, with an indexed-heap overflow for the rest.
    #[default]
    TimingWheel,
    /// The indexed 4-ary heap: `O(log4 n)` operations over packed keys.
    Indexed4,
    /// The original `BinaryHeap`-of-entries scheduler, kept as the reference
    /// implementation for differential tests and regression baselines.
    ClassicBinaryHeap,
}

/// Pack an event key: time in the high 64 bits, subkey in the low 64.
#[inline(always)]
pub(crate) fn pack(time: SimTime, subkey: u64) -> u128 {
    ((time.as_ns() as u128) << 64) | subkey as u128
}

/// The time half of a packed key.
#[inline(always)]
pub(crate) fn key_time(key: u128) -> SimTime {
    SimTime::from_ns((key >> 64) as u64)
}

/// A pending event as handed back by a queue pop.
pub(crate) struct PoppedEvent<M> {
    pub key: u128,
    pub time: SimTime,
    pub target: ComponentId,
    pub msg: M,
}

/// The hot-path queue: a 4-ary min-heap over packed keys with payloads in a
/// slab.
pub(crate) struct IndexedHeap<M> {
    /// Heap-ordered packed `(time, subkey)` keys.
    keys: Vec<u128>,
    /// Parallel to `keys`: slab slot of each event's payload.
    slots: Vec<u32>,
    /// Payload slab; `None` entries are free.
    payload: Vec<Option<(ComponentId, M)>>,
    /// Free slab slots.
    free: Vec<u32>,
}

const ARITY: usize = 4;

impl<M> IndexedHeap<M> {
    fn new() -> Self {
        IndexedHeap {
            keys: Vec::new(),
            slots: Vec::new(),
            payload: Vec::new(),
            free: Vec::new(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.keys.len()
    }

    #[inline]
    fn peek_time(&self) -> Option<SimTime> {
        self.keys.first().map(|&k| key_time(k))
    }

    #[inline]
    fn peek_key(&self) -> Option<u128> {
        self.keys.first().copied()
    }

    /// Store a payload, returning its slab slot.
    #[inline]
    fn store(&mut self, target: ComponentId, msg: M) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.payload[slot as usize] = Some((target, msg));
                slot
            }
            None => {
                let slot = u32::try_from(self.payload.len()).expect("event slab overflow");
                self.payload.push(Some((target, msg)));
                slot
            }
        }
    }

    #[inline]
    fn push(&mut self, key: u128, target: ComponentId, msg: M) {
        let slot = self.store(target, msg);
        self.keys.push(key);
        self.slots.push(slot);
        self.sift_up(self.keys.len() - 1);
    }

    /// Insert a batch of already-keyed events in one pass. When the batch is
    /// at least as large as the existing heap, appending everything and
    /// rebuilding bottom-up (Floyd) is cheaper than per-element sift-up.
    fn push_batch(&mut self, batch: impl Iterator<Item = (u128, ComponentId, M)>) {
        let before = self.keys.len();
        for (key, target, msg) in batch {
            let slot = self.store(target, msg);
            self.keys.push(key);
            self.slots.push(slot);
        }
        let added = self.keys.len() - before;
        if added == 0 {
            return;
        }
        if added >= before {
            // Floyd's heap construction: sift down every internal node.
            for i in (0..self.keys.len() / ARITY + 1).rev() {
                self.sift_down(i);
            }
        } else {
            for i in before..self.keys.len() {
                self.sift_up(i);
            }
        }
    }

    fn pop(&mut self) -> Option<PoppedEvent<M>> {
        if self.keys.is_empty() {
            return None;
        }
        let key = self.keys[0];
        let slot = self.slots[0];
        let last_key = self.keys.pop().expect("non-empty");
        let last_slot = self.slots.pop().expect("non-empty");
        if !self.keys.is_empty() {
            // Walk the root hole to the bottom along min-children without
            // comparing against the displaced leaf, then sift the leaf up
            // from there. The displaced element almost always belongs near
            // the bottom, so this does ~1/4 of the comparisons of a
            // classical compare-as-you-go sift-down.
            let hole = self.hole_to_bottom();
            self.keys[hole] = last_key;
            self.slots[hole] = last_slot;
            self.sift_up(hole);
        }
        let (target, msg) = self.payload[slot as usize]
            .take()
            .expect("heap slot had no payload");
        self.free.push(slot);
        Some(PoppedEvent {
            key,
            time: key_time(key),
            target,
            msg,
        })
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        let key = self.keys[i];
        let slot = self.slots[i];
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.keys[parent] <= key {
                break;
            }
            self.keys[i] = self.keys[parent];
            self.slots[i] = self.slots[parent];
            i = parent;
        }
        self.keys[i] = key;
        self.slots[i] = slot;
    }

    /// Move the hole at the root down to a leaf, always following the
    /// minimum child, and return the leaf position of the hole.
    #[inline]
    fn hole_to_bottom(&mut self) -> usize {
        let len = self.keys.len();
        let mut i = 0;
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= len {
                return i;
            }
            let last_child = (first_child + ARITY).min(len);
            let mut best = first_child;
            let mut best_key = self.keys[first_child];
            for c in first_child + 1..last_child {
                if self.keys[c] < best_key {
                    best = c;
                    best_key = self.keys[c];
                }
            }
            self.keys[i] = best_key;
            self.slots[i] = self.slots[best];
            i = best;
        }
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let len = self.keys.len();
        if i >= len {
            return;
        }
        let key = self.keys[i];
        let slot = self.slots[i];
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + ARITY).min(len);
            let mut best = first_child;
            let mut best_key = self.keys[first_child];
            for c in first_child + 1..last_child {
                if self.keys[c] < best_key {
                    best = c;
                    best_key = self.keys[c];
                }
            }
            if best_key >= key {
                break;
            }
            self.keys[i] = best_key;
            self.slots[i] = self.slots[best];
            i = best;
        }
        self.keys[i] = key;
        self.slots[i] = slot;
    }
}

/// The default scheduler: a timing wheel (calendar queue) over a sliding
/// `[base, base + WHEEL_BUCKETS)` nanosecond window.
///
/// Discrete-event workloads here push events a handful of nanoseconds to a
/// couple of microseconds ahead of `now`, so nearly every event lands in
/// the window: push links a slab node into its bucket (almost always a tail
/// append) and sets a bitmap bit, pop unlinks the head node. Buckets are
/// `(head, tail)` node indices into a slab whose free list is LIFO, so a
/// ping-pong workload keeps re-using the same hot node; the whole bucket
/// array is 16 KiB and stays cache-resident. Events beyond the window (or
/// behind the read floor) go to an [`IndexedHeap`] overflow; when the
/// window drains, it advances to the overflow's minimum and re-buckets
/// everything now in range.
///
/// A depth-1 bypass (the classic DES "top event cache") short-circuits
/// ping-pong workloads: a push into an empty queue parks the event in
/// `single` and the next pop returns it without touching a bucket at all.
/// Any push while `single` is occupied flushes it into the wheel first.
///
/// ## Ordering proof sketch
///
/// Pop must follow the total `(time, subkey)` key order among the events
/// currently pending:
///
/// * Same-time events share a bucket, and each bucket chain is kept sorted
///   by subkey on insert — so within a bucket delivery order *is* key
///   order. (Unlike a global insertion counter, content subkeys do not
///   arrive in increasing order: a later push from a lower-numbered source
///   carries a smaller subkey. The sorted insert restores the total order;
///   the common case — monotone subkeys — is still a tail append.)
/// * Overflow events that re-bucket on a window advance are inserted in
///   key order *before* any direct push into the new window can occur, so
///   the sorted-chain property is established by tail appends alone.
/// * An in-window push behind the read floor is routed to the overflow, and
///   the floor only moves forward, so such an event's time stays strictly
///   below every remaining bucket time — the overflow-first pop rule
///   delivers it in order, and an overflow/bucket *time* tie is impossible
///   (full keys are compared anyway, for safety).
pub(crate) struct WheelQueue<M> {
    /// Depth-1 bypass: the sole queued event, iff `len == 1` came from a
    /// push into an empty queue. Invariant: `single.is_some()` implies the
    /// buckets and the overflow are empty.
    single: Option<(u128, ComponentId, M)>,
    /// Time (ns) of bucket 0.
    base: u64,
    /// Bucket index of the last bucket pop; in-window pushes behind this go
    /// to the overflow so the scan never moves backwards.
    floor: usize,
    /// First non-empty bucket index, or `WHEEL_BUCKETS` when none.
    next_bucket: usize,
    /// Per bucket: slab index of the first queued node, or `NIL`.
    head: Box<[u32; WHEEL_BUCKETS]>,
    /// Per bucket: slab index of the last queued node (stale when empty).
    tail: Box<[u32; WHEEL_BUCKETS]>,
    /// Per node: slab index of the next node in the same bucket, or `NIL`.
    next: Vec<u32>,
    /// Per node: the low 64 bits of the event key (bucket = the high bits).
    subkeys: Vec<u64>,
    /// Per node: the event payload; `None` entries are free.
    payload: Vec<Option<(ComponentId, M)>>,
    /// Free slab nodes (LIFO, so the hottest node is re-used first).
    free: Vec<u32>,
    /// One bit per bucket: non-empty.
    occupied: Box<[u64; WHEEL_WORDS]>,
    /// Events outside the window, in full `(time, subkey)` key order.
    overflow: IndexedHeap<M>,
    /// Total queued events (buckets + overflow).
    len: usize,
}

/// Wheel window width in nanoseconds (and buckets). 2 µs covers the link,
/// DMA and host-wakeup delays of both substrates while keeping the touched
/// bucket set inside the L1 cache; longer timers take the overflow path.
const WHEEL_BUCKETS: usize = 2048;
const WHEEL_WORDS: usize = WHEEL_BUCKETS / 64;
/// Null link / empty bucket marker.
const NIL: u32 = u32::MAX;

impl<M> WheelQueue<M> {
    fn new() -> Self {
        WheelQueue {
            single: None,
            base: 0,
            floor: 0,
            next_bucket: WHEEL_BUCKETS,
            head: Box::new([NIL; WHEEL_BUCKETS]),
            tail: Box::new([NIL; WHEEL_BUCKETS]),
            next: Vec::new(),
            subkeys: Vec::new(),
            payload: Vec::new(),
            free: Vec::new(),
            occupied: Box::new([0; WHEEL_WORDS]),
            overflow: IndexedHeap::new(),
            len: 0,
        }
    }

    #[inline]
    fn horizon(&self) -> u64 {
        self.base.saturating_add(WHEEL_BUCKETS as u64)
    }

    /// Insert a payload node into bucket `idx`'s chain, keeping the chain
    /// sorted by subkey. Monotone pushes — the overwhelmingly common case —
    /// take the tail-append fast path.
    #[inline]
    fn link(&mut self, idx: usize, subkey: u64, target: ComponentId, msg: M) {
        // `idx` is already < WHEEL_BUCKETS; the mask lets the compiler drop
        // every bounds check on the fixed-size bucket arrays.
        let idx = idx & (WHEEL_BUCKETS - 1);
        let slot = match self.free.pop() {
            Some(slot) => {
                self.payload[slot as usize] = Some((target, msg));
                self.subkeys[slot as usize] = subkey;
                self.next[slot as usize] = NIL;
                slot
            }
            None => {
                let slot = u32::try_from(self.payload.len()).expect("wheel slab overflow");
                self.payload.push(Some((target, msg)));
                self.subkeys.push(subkey);
                self.next.push(NIL);
                slot
            }
        };
        let tail = self.tail[idx];
        if self.head[idx] == NIL {
            self.head[idx] = slot;
            self.tail[idx] = slot;
        } else if self.subkeys[tail as usize] <= subkey {
            self.next[tail as usize] = slot;
            self.tail[idx] = slot;
        } else {
            // Out-of-order subkey: walk the (short) chain to the insertion
            // point. The chain stays sorted, so the walk stops at the first
            // larger subkey.
            let mut prev = NIL;
            let mut cur = self.head[idx];
            while cur != NIL && self.subkeys[cur as usize] <= subkey {
                prev = cur;
                cur = self.next[cur as usize];
            }
            self.next[slot as usize] = cur;
            if prev == NIL {
                self.head[idx] = slot;
            } else {
                self.next[prev as usize] = slot;
            }
        }
        self.occupied[idx / 64] |= 1 << (idx % 64);
        if idx < self.next_bucket {
            self.next_bucket = idx;
        }
    }

    #[inline]
    fn push(&mut self, key: u128, target: ComponentId, msg: M) {
        self.len += 1;
        if self.len == 1 {
            self.single = Some((key, target, msg));
            return;
        }
        if let Some((skey, starget, smsg)) = self.single.take() {
            self.route(skey, starget, smsg);
        }
        self.route(key, target, msg);
    }

    /// Place one event into a bucket or the overflow.
    #[inline]
    fn route(&mut self, key: u128, target: ComponentId, msg: M) {
        let t = (key >> 64) as u64;
        let off = t.wrapping_sub(self.base);
        if t >= self.base && off < WHEEL_BUCKETS as u64 && off as usize >= self.floor {
            self.link(off as usize, key as u64, target, msg);
        } else {
            // Behind the floor or beyond the horizon: full-key heap order.
            self.overflow.push(key, target, msg);
        }
    }

    /// Full key of the head of the first occupied bucket, if any.
    #[inline]
    fn bucket_head_key(&self) -> Option<u128> {
        if self.next_bucket >= WHEEL_BUCKETS {
            return None;
        }
        let b = self.next_bucket & (WHEEL_BUCKETS - 1);
        let head = self.head[b];
        debug_assert_ne!(head, NIL, "occupied bucket empty");
        Some(pack(
            SimTime::from_ns(self.base + self.next_bucket as u64),
            self.subkeys[head as usize],
        ))
    }

    fn pop(&mut self) -> Option<PoppedEvent<M>> {
        if let Some((key, target, msg)) = self.single.take() {
            self.len -= 1;
            return Some(PoppedEvent {
                key,
                time: key_time(key),
                target,
                msg,
            });
        }
        // Fast path: no overflow pending (the common case — overflow only
        // holds events scheduled more than a window ahead), so the first
        // occupied bucket's head is the global minimum.
        if self.overflow.len() == 0 {
            if self.next_bucket < WHEEL_BUCKETS {
                return self.pop_bucket();
            }
            return None;
        }
        loop {
            let bucket_key = self.bucket_head_key();
            let over_key = self.overflow.peek_key();
            match (over_key, bucket_key) {
                (None, None) => return None,
                (Some(ok), None) if (ok >> 64) as u64 >= self.horizon() => {
                    // Window fully drained and everything pending is beyond
                    // it: slide the window and re-bucket.
                    self.advance((ok >> 64) as u64);
                    continue;
                }
                (Some(ok), Some(bk)) if ok >= bk => return self.pop_bucket(),
                (Some(_), _) => {
                    self.len -= 1;
                    return self.overflow.pop();
                }
                (None, Some(_)) => return self.pop_bucket(),
            }
        }
    }

    #[inline]
    fn pop_bucket(&mut self) -> Option<PoppedEvent<M>> {
        let bucket_time = self.base + self.next_bucket as u64;
        let b = self.next_bucket & (WHEEL_BUCKETS - 1);
        let slot = self.head[b];
        debug_assert_ne!(slot, NIL, "occupied bucket empty");
        let rest = self.next[slot as usize];
        self.head[b] = rest;
        let (target, msg) = self.payload[slot as usize]
            .take()
            .expect("wheel node had no payload");
        let subkey = self.subkeys[slot as usize];
        self.free.push(slot);
        self.floor = b;
        if rest == NIL {
            self.occupied[b / 64] &= !(1 << (b % 64));
            self.next_bucket = self.scan_from(b + 1);
        }
        self.len -= 1;
        Some(PoppedEvent {
            key: pack(SimTime::from_ns(bucket_time), subkey),
            time: SimTime::from_ns(bucket_time),
            target,
            msg,
        })
    }

    /// Slide the window so bucket 0 sits at `t0` (the overflow minimum) and
    /// re-bucket every overflow event now inside the window, in key order.
    fn advance(&mut self, t0: u64) {
        debug_assert_eq!(self.next_bucket, WHEEL_BUCKETS, "advance with buckets live");
        self.base = t0;
        self.floor = 0;
        let limit = self.horizon();
        while let Some(t) = self.overflow.peek_time() {
            let tn = t.as_ns();
            if tn >= limit {
                break;
            }
            let e = self.overflow.pop().expect("peeked event vanished");
            self.link((tn - t0) as usize, e.key as u64, e.target, e.msg);
        }
    }

    /// First occupied bucket at or after `from`, or `WHEEL_BUCKETS`.
    fn scan_from(&self, from: usize) -> usize {
        let mut w = from / 64;
        if w >= WHEEL_WORDS {
            return WHEEL_BUCKETS;
        }
        let mut word = self.occupied[w] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return w * 64 + word.trailing_zeros() as usize;
            }
            w += 1;
            if w == WHEEL_WORDS {
                return WHEEL_BUCKETS;
            }
            word = self.occupied[w];
        }
    }

    #[inline]
    fn peek_time(&self) -> Option<SimTime> {
        if let Some((key, _, _)) = &self.single {
            return Some(key_time(*key));
        }
        let bucket =
            (self.next_bucket < WHEEL_BUCKETS).then(|| self.base + self.next_bucket as u64);
        let over = self.overflow.peek_time().map(|t| t.as_ns());
        match (bucket, over) {
            (None, None) => None,
            (Some(b), None) => Some(SimTime::from_ns(b)),
            (None, Some(o)) => Some(SimTime::from_ns(o)),
            (Some(b), Some(o)) => Some(SimTime::from_ns(b.min(o))),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }
}

/// The original scheduler: one `BinaryHeap` of whole entries, compared by
/// the same packed key (max-heap inverted via `Reverse`-style ordering).
pub(crate) struct ClassicHeap<M> {
    heap: BinaryHeap<ClassicEntry<M>>,
}

struct ClassicEntry<M> {
    key: u128,
    target: ComponentId,
    msg: M,
}

impl<M> PartialEq for ClassicEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for ClassicEntry<M> {}
impl<M> PartialOrd for ClassicEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for ClassicEntry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest key pops first.
        other.key.cmp(&self.key)
    }
}

impl<M> ClassicHeap<M> {
    fn new() -> Self {
        ClassicHeap {
            heap: BinaryHeap::new(),
        }
    }
}

/// A queue of key-ordered events. Keys are assigned by the engine (content
/// based: time, scheduling source, per-source count), so a queue is a pure
/// priority structure with no ordering state of its own.
pub(crate) enum EventQueue<M> {
    Wheel(WheelQueue<M>),
    Indexed(IndexedHeap<M>),
    Classic(ClassicHeap<M>),
}

impl<M> EventQueue<M> {
    pub fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::TimingWheel => EventQueue::Wheel(WheelQueue::new()),
            SchedulerKind::Indexed4 => EventQueue::Indexed(IndexedHeap::new()),
            SchedulerKind::ClassicBinaryHeap => EventQueue::Classic(ClassicHeap::new()),
        }
    }

    pub fn kind(&self) -> SchedulerKind {
        match self {
            EventQueue::Wheel(_) => SchedulerKind::TimingWheel,
            EventQueue::Indexed(_) => SchedulerKind::Indexed4,
            EventQueue::Classic(_) => SchedulerKind::ClassicBinaryHeap,
        }
    }

    #[inline]
    pub fn push(&mut self, key: u128, target: ComponentId, msg: M) {
        match self {
            EventQueue::Wheel(q) => q.push(key, target, msg),
            EventQueue::Indexed(q) => q.push(key, target, msg),
            EventQueue::Classic(q) => q.heap.push(ClassicEntry { key, target, msg }),
        }
    }

    /// Insert a whole batch in one pass (see [`IndexedHeap::push_batch`]).
    pub fn push_batch(&mut self, batch: impl Iterator<Item = (u128, ComponentId, M)>) {
        match self {
            EventQueue::Wheel(q) => {
                for (key, target, msg) in batch {
                    q.push(key, target, msg);
                }
            }
            EventQueue::Indexed(q) => q.push_batch(batch),
            EventQueue::Classic(q) => {
                for (key, target, msg) in batch {
                    q.heap.push(ClassicEntry { key, target, msg });
                }
            }
        }
    }

    #[inline]
    pub fn pop(&mut self) -> Option<PoppedEvent<M>> {
        match self {
            EventQueue::Wheel(q) => q.pop(),
            EventQueue::Indexed(q) => q.pop(),
            EventQueue::Classic(q) => q.heap.pop().map(|e| PoppedEvent {
                key: e.key,
                time: key_time(e.key),
                target: e.target,
                msg: e.msg,
            }),
        }
    }

    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        match self {
            EventQueue::Wheel(q) => q.peek_time(),
            EventQueue::Indexed(q) => q.peek_time(),
            EventQueue::Classic(q) => q.heap.peek().map(|e| key_time(e.key)),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        match self {
            EventQueue::Wheel(q) => q.len(),
            EventQueue::Indexed(q) => q.len(),
            EventQueue::Classic(q) => q.heap.len(),
        }
    }
}

// ---------------------------------------------------------------------------
// Bounded SPSC ring — the lock-free cross-shard mailbox transport
// ---------------------------------------------------------------------------

/// A bounded single-producer single-consumer ring queue.
///
/// This is the transport under the parallel engine's cross-shard mailboxes
/// (`crate::parallel`): each `(from, to)` shard pair owns one ring for full
/// batches and one for recycled empties, so a deposit is one `Release`
/// store and a drain one `Acquire` load — no mutex, no syscall, no
/// contention with any third shard. The two-barrier window protocol
/// guarantees at most one undrained batch per pair per window, so a tiny
/// fixed capacity suffices and `push` failure is a protocol violation, not
/// a flow-control event.
///
/// Safety model: `head` (consumer cursor) and `tail` (producer cursor) are
/// monotonically increasing and each is written by exactly one side. A slot
/// at index `i` is owned by the producer when `i - head < capacity` and
/// `i >= tail`, and by the consumer when `head <= i < tail`; the
/// Acquire/Release pair on the cursor the *other* side reads transfers
/// ownership of the slot's contents. The cursors sit on separate cache
/// lines so the two sides never false-share.
pub struct SpscRing<T> {
    slots: Box<[std::cell::UnsafeCell<std::mem::MaybeUninit<T>>]>,
    /// Next slot to pop (written by the consumer only).
    head: CacheAligned,
    /// Next slot to push (written by the producer only).
    tail: CacheAligned,
}

/// A `u64` cursor padded to a cache line, so the producer's and consumer's
/// cursors never share one.
#[repr(align(64))]
#[derive(Default)]
struct CacheAligned(std::sync::atomic::AtomicU64);

// SAFETY: the ring hands each `T` from exactly one thread to exactly one
// other thread with Acquire/Release ordering on the cursor stores (the same
// contract as a channel), so it is `Sync` whenever `T` may move between
// threads.
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// An empty ring holding at most `capacity` items (must be nonzero).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity ring can never transfer");
        SpscRing {
            slots: (0..capacity)
                .map(|_| std::cell::UnsafeCell::new(std::mem::MaybeUninit::uninit()))
                .collect(),
            head: CacheAligned::default(),
            tail: CacheAligned::default(),
        }
    }

    /// Number of items currently in flight (approximate under concurrency:
    /// exact from either endpoint's own perspective).
    pub fn len(&self) -> usize {
        let tail = self.tail.0.load(AtomicOrd::Acquire);
        let head = self.head.0.load(AtomicOrd::Acquire);
        tail.saturating_sub(head) as usize
    }

    /// Whether the ring is currently empty (same caveat as [`Self::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Producer side: append `value`, or hand it back if the ring is full.
    ///
    /// Must only be called by the single producer thread of this ring.
    pub fn push(&self, value: T) -> Result<(), T> {
        let tail = self.tail.0.load(AtomicOrd::Relaxed);
        let head = self.head.0.load(AtomicOrd::Acquire);
        if tail - head >= self.slots.len() as u64 {
            return Err(value);
        }
        let slot = &self.slots[(tail % self.slots.len() as u64) as usize];
        // SAFETY: `tail - head < capacity` means this slot's previous
        // occupant (if any) was popped — the consumer's Release store of
        // `head`, which we Acquire-loaded above, transferred the empty slot
        // back to us. We are the only producer, so nobody else writes it.
        unsafe { (*slot.get()).write(value) };
        self.tail.0.store(tail + 1, AtomicOrd::Release);
        Ok(())
    }

    /// Consumer side: take the oldest item, if any.
    ///
    /// Must only be called by the single consumer thread of this ring.
    pub fn pop(&self) -> Option<T> {
        let head = self.head.0.load(AtomicOrd::Relaxed);
        let tail = self.tail.0.load(AtomicOrd::Acquire);
        if head == tail {
            return None;
        }
        let slot = &self.slots[(head % self.slots.len() as u64) as usize];
        // SAFETY: `head < tail` and the Acquire load of `tail` make the
        // producer's write of this slot visible; advancing `head` below
        // hands the emptied slot back. We are the only consumer.
        let value = unsafe { (*slot.get()).assume_init_read() };
        self.head.0.store(head + 1, AtomicOrd::Release);
        Some(value)
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // Exclusive access: pop and drop whatever is still in flight.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single-source key generator: reproduces the classic "global insertion
    /// order" tie-break the engine's per-source counts generalize.
    struct KeyGen {
        count: u64,
    }

    impl KeyGen {
        fn new() -> Self {
            KeyGen { count: 0 }
        }
        fn key(&mut self, t: u64) -> u128 {
            let k = pack(SimTime::from_ns(t), self.count);
            self.count += 1;
            k
        }
    }

    fn drain<M>(q: &mut EventQueue<M>) -> Vec<(u64, usize)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push((e.time.as_ns(), e.target.0));
        }
        out
    }

    fn exercise(kind: SchedulerKind) -> Vec<(u64, usize)> {
        let mut q = EventQueue::new(kind);
        let mut gen = KeyGen::new();
        // A deliberately adversarial mix: descending, ties, interleaved
        // pops, and a batch insert.
        for t in (0..50u64).rev() {
            q.push(gen.key(t % 7), ComponentId(t as usize), t);
        }
        let mut popped = Vec::new();
        for _ in 0..10 {
            let e = q.pop().unwrap();
            popped.push((e.time.as_ns(), e.target.0));
        }
        q.push_batch((0..100u64).map(|i| (gen.key(i % 5), ComponentId(1000 + i as usize), i)));
        popped.extend(drain(&mut q));
        popped
    }

    #[test]
    fn all_schedulers_pop_identically() {
        let classic = exercise(SchedulerKind::ClassicBinaryHeap);
        assert_eq!(exercise(SchedulerKind::TimingWheel), classic);
        assert_eq!(exercise(SchedulerKind::Indexed4), classic);
    }

    #[test]
    fn pop_order_is_time_then_subkey() {
        for kind in [
            SchedulerKind::TimingWheel,
            SchedulerKind::Indexed4,
            SchedulerKind::ClassicBinaryHeap,
        ] {
            let mut q = EventQueue::<u32>::new(kind);
            let mut gen = KeyGen::new();
            for (i, &t) in [5u64, 1, 5, 0, 1].iter().enumerate() {
                q.push(gen.key(t), ComponentId(i), i as u32);
            }
            let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|e| e.target.0).collect();
            assert_eq!(order, vec![3, 1, 4, 0, 2], "{kind:?}");
        }
    }

    /// Same-time events pushed with *descending* subkeys (a later push from
    /// a lower-numbered source) must still pop in subkey order — this is
    /// the sorted-bucket-insert path the content-key scheme depends on.
    #[test]
    fn same_time_descending_subkeys_pop_in_key_order() {
        for kind in [
            SchedulerKind::TimingWheel,
            SchedulerKind::Indexed4,
            SchedulerKind::ClassicBinaryHeap,
        ] {
            let mut q = EventQueue::<u64>::new(kind);
            // Two time buckets, each receiving subkeys in descending and
            // then interleaved order.
            for (t, sub) in [
                (10u64, 50u64),
                (10, 30),
                (20, 9),
                (10, 40),
                (20, 3),
                (10, 35),
            ] {
                q.push(
                    pack(SimTime::from_ns(t), sub),
                    ComponentId(sub as usize),
                    sub,
                );
            }
            let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|e| e.target.0).collect();
            assert_eq!(order, vec![30, 35, 40, 50, 3, 9], "{kind:?}");
        }
    }

    /// Push times far beyond the wheel window, interleave pops (advancing
    /// the wheel base), then push behind the new floor — every path through
    /// bucket / overflow / rebucketing must still yield global key order.
    #[test]
    fn wheel_overflow_and_rebucketing_match_classic() {
        let run = |kind: SchedulerKind| {
            let mut q = EventQueue::<u64>::new(kind);
            let mut gen = KeyGen::new();
            // Mix of in-window, far-future (multiple windows out), and tied
            // times, pushed in descending order.
            for t in (0..40u64).rev() {
                let time = (t % 3) * 20_000 + t % 5; // 0, 20_000, 40_000 bands
                q.push(gen.key(time), ComponentId(t as usize), t);
            }
            let mut popped = Vec::new();
            for _ in 0..20 {
                let e = q.pop().unwrap();
                popped.push((e.time.as_ns(), e.target.0));
                // Push behind the current pop time (same-time is legal);
                // lands behind the wheel floor → overflow path.
                if popped.len() % 4 == 0 {
                    q.push(
                        gen.key(e.time.as_ns()),
                        ComponentId(9000 + popped.len()),
                        popped.len() as u64,
                    );
                }
            }
            popped.extend(drain(&mut q));
            popped
        };
        assert_eq!(
            run(SchedulerKind::TimingWheel),
            run(SchedulerKind::ClassicBinaryHeap)
        );
    }

    #[test]
    fn batch_into_empty_heap_uses_floyd_and_orders() {
        let mut q = EventQueue::<u64>::new(SchedulerKind::Indexed4);
        let mut gen = KeyGen::new();
        q.push_batch((0..200u64).map(|i| (gen.key(199 - i), ComponentId(i as usize), i)));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_ns())
            .collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert_eq!(times.len(), 200);
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q = EventQueue::<u64>::new(SchedulerKind::Indexed4);
        let mut gen = KeyGen::new();
        for round in 0..10u64 {
            for i in 0..8u64 {
                q.push(gen.key(i), ComponentId(0), round * 8 + i);
            }
            while q.pop().is_some() {}
        }
        if let EventQueue::Indexed(h) = &q {
            assert!(
                h.payload.len() <= 8,
                "slab grew to {} for a working set of 8",
                h.payload.len()
            );
        } else {
            unreachable!();
        }
    }

    /// The wheel's popped keys must round-trip exactly (bucket time + stored
    /// subkey), including through the single-event bypass and rebucketing.
    #[test]
    fn popped_keys_are_exact_on_every_path() {
        let mut q = EventQueue::<u64>::new(SchedulerKind::TimingWheel);
        let keys = [
            pack(SimTime::from_ns(5), 77),        // bypass path
            pack(SimTime::from_ns(5), 12),        // bucket path
            pack(SimTime::from_ns(100_000), 3),   // overflow + advance
            pack(SimTime::from_ns(100_000), 900), // overflow tie time
        ];
        for (i, &k) in keys.iter().enumerate() {
            q.push(k, ComponentId(i), i as u64);
        }
        let mut got: Vec<u128> = std::iter::from_fn(|| q.pop()).map(|e| e.key).collect();
        let mut expect = keys.to_vec();
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn spsc_push_pop_fifo_and_capacity() {
        let ring: SpscRing<u32> = SpscRing::new(2);
        assert!(ring.is_empty());
        assert!(ring.pop().is_none());
        ring.push(1).unwrap();
        ring.push(2).unwrap();
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.push(3), Err(3), "full ring hands the value back");
        assert_eq!(ring.pop(), Some(1));
        ring.push(4).unwrap();
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.pop(), Some(4));
        assert!(ring.pop().is_none());
    }

    #[test]
    fn spsc_wraps_many_times() {
        let ring: SpscRing<usize> = SpscRing::new(3);
        for i in 0..1000 {
            ring.push(i).unwrap();
            assert_eq!(ring.pop(), Some(i));
        }
        assert!(ring.is_empty());
    }

    #[test]
    fn spsc_drops_in_flight_items() {
        // Drop with items still queued must drop each exactly once.
        use std::sync::atomic::AtomicU64;
        static DROPS: AtomicU64 = AtomicU64::new(0);
        struct Canary;
        impl Drop for Canary {
            fn drop(&mut self) {
                DROPS.fetch_add(1, AtomicOrd::Relaxed);
            }
        }
        let ring: SpscRing<Canary> = SpscRing::new(4);
        assert!(ring.push(Canary).is_ok());
        assert!(ring.push(Canary).is_ok());
        drop(ring.pop());
        drop(ring);
        assert_eq!(DROPS.load(AtomicOrd::Relaxed), 2);
    }

    #[test]
    fn spsc_transfers_across_threads() {
        // A two-thread stress run: every value arrives exactly once, in
        // order, under real concurrency (Miri-friendly size).
        let ring: SpscRing<u64> = SpscRing::new(2);
        let total: u64 = 10_000;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut next = 0u64;
                while next < total {
                    match ring.push(next) {
                        Ok(()) => next += 1,
                        Err(_) => std::hint::spin_loop(),
                    }
                }
            });
            let mut expect = 0u64;
            while expect < total {
                match ring.pop() {
                    Some(v) => {
                        assert_eq!(v, expect);
                        expect += 1;
                    }
                    None => std::hint::spin_loop(),
                }
            }
        });
        assert!(ring.is_empty());
    }
}
