//! Optional event tracing.
//!
//! A [`Trace`] is a bounded ring of `(time, component, event)` records,
//! where the payload is a typed [`SpanEvent`] (see [`crate::span`]). It is
//! disabled by default (zero cost beyond a branch); tests enable it to
//! assert fine-grained protocol behaviour, e.g. "the barrier send token
//! never waited behind a point-to-point token" or "no ACK was emitted for a
//! collective packet".

use crate::engine::ComponentId;
use crate::span::SpanEvent;
use crate::time::SimTime;
use std::fmt;

/// One trace record: a typed event stamped with its emission time and the
/// component that emitted it. The legacy `(label, a, b)` word view is still
/// available through [`TraceRecord::label`], [`TraceRecord::a`] and
/// [`TraceRecord::b`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time the record was emitted.
    pub time: SimTime,
    /// Component that emitted it.
    pub component: ComponentId,
    /// The typed event payload.
    pub event: SpanEvent,
}

impl TraceRecord {
    /// Static label identifying the event kind.
    pub fn label(&self) -> &'static str {
        self.event.label()
    }

    /// First payload word (legacy view; meaning depends on the variant).
    pub fn a(&self) -> u64 {
        self.event.a()
    }

    /// Second payload word (legacy view; meaning depends on the variant).
    pub fn b(&self) -> u64 {
        self.event.b()
    }
}

/// A bounded trace ring. When full, the oldest records are dropped and
/// [`Trace::dropped`] counts how many.
pub struct Trace {
    enabled: bool,
    capacity: usize,
    records: Vec<TraceRecord>,
    start: usize,
    dropped: u64,
}

impl Trace {
    /// Default ring capacity when enabled.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Create a disabled trace.
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            capacity: 0,
            records: Vec::new(),
            start: 0,
            dropped: 0,
        }
    }

    /// Create an enabled trace with the given ring capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be non-zero");
        Trace {
            enabled: true,
            capacity,
            records: Vec::with_capacity(capacity.min(1024)),
            start: 0,
            dropped: 0,
        }
    }

    /// Is recording active?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enable recording (with [`Self::DEFAULT_CAPACITY`] if previously
    /// disabled).
    pub fn enable(&mut self) {
        if self.capacity == 0 {
            self.capacity = Self::DEFAULT_CAPACITY;
        }
        self.enabled = true;
    }

    /// Append a record if enabled.
    #[inline]
    pub fn emit(&mut self, rec: TraceRecord) {
        if !self.enabled {
            return;
        }
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.records[self.start] = rec;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate over retained records in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> + '_ {
        let (tail, head) = self.records.split_at(self.start);
        head.iter().chain(tail.iter())
    }

    /// Records with a given label, in emission order.
    pub fn with_label<'a>(
        &'a self,
        label: &'static str,
    ) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.iter().filter(move |r| r.label() == label)
    }

    /// Count of records with a given label (among retained records).
    pub fn count(&self, label: &'static str) -> usize {
        self.with_label(label).count()
    }

    /// Drop all retained records (keeps enabled state).
    pub fn clear(&mut self) {
        self.records.clear();
        self.start = 0;
        self.dropped = 0;
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Trace(enabled={}, len={}, dropped={})",
            self.enabled,
            self.len(),
            self.dropped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, label: &'static str, a: u64) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_ns(t),
            component: ComponentId(0),
            event: SpanEvent::Raw { label, a, b: 0 },
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.emit(rec(1, "x", 0));
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn records_in_order() {
        let mut t = Trace::with_capacity(8);
        for i in 0..5 {
            t.emit(rec(i, "pkt", i));
        }
        let seen: Vec<u64> = t.iter().map(|r| r.a()).collect();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::with_capacity(4);
        for i in 0..7 {
            t.emit(rec(i, "pkt", i));
        }
        let seen: Vec<u64> = t.iter().map(|r| r.a()).collect();
        assert_eq!(seen, vec![3, 4, 5, 6]);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn label_filters() {
        let mut t = Trace::with_capacity(16);
        t.emit(rec(0, "ack", 1));
        t.emit(rec(1, "pkt", 2));
        t.emit(rec(2, "ack", 3));
        assert_eq!(t.count("ack"), 2);
        assert_eq!(t.count("pkt"), 1);
        assert_eq!(t.count("nack"), 0);
        let acks: Vec<u64> = t.with_label("ack").map(|r| r.a()).collect();
        assert_eq!(acks, vec![1, 3]);
    }

    #[test]
    fn typed_events_filter_by_phase_label() {
        let mut t = Trace::with_capacity(16);
        t.emit(TraceRecord {
            time: SimTime::from_ns(1),
            component: ComponentId(3),
            event: SpanEvent::Nack { dst: 2, round: 5 },
        });
        assert_eq!(t.count("nack"), 1);
        let r = t.with_label("nack").next().unwrap();
        assert_eq!((r.a(), r.b()), (2, 5));
        assert_eq!(r.event, SpanEvent::Nack { dst: 2, round: 5 });
    }

    #[test]
    fn clear_keeps_enabled() {
        let mut t = Trace::with_capacity(4);
        t.emit(rec(0, "x", 0));
        t.clear();
        assert!(t.is_empty());
        assert!(t.is_enabled());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn enable_from_disabled_uses_default_capacity() {
        let mut t = Trace::disabled();
        t.enable();
        assert!(t.is_enabled());
        t.emit(rec(0, "x", 0));
        assert_eq!(t.len(), 1);
    }
}
