//! Causal netdump: wire-visible events with parent ids.
//!
//! The flight recorder ([`crate::span`]) answers *how long* each phase of a
//! collective took; it cannot answer *which chain of packets and NIC events
//! bounded the operation*. This module adds the missing half: every
//! wire-visible event (host doorbell, NIC dispatch, DMA start/finish, packet
//! fired / on the wire / arrived, NACK, retransmission, host notification) is
//! recorded as a [`PacketRecord`] carrying the id of the record that caused
//! it. In a discrete-event simulation each handler runs in response to
//! exactly one message, so a single parent id per record is enough to
//! reconstruct the full causal DAG of a barrier — and walking parents back
//! from the last rank's completion yields its critical path exactly, because
//! emitters thread the *last-enabling* stimulus as the parent at every join
//! (e.g. the arrival that tripped a counting event, or the packet that
//! completed a dissemination round).
//!
//! Records live in a bounded [`NetDump`] buffer on the engine, disabled by
//! default. When disabled, [`crate::Ctx::packet`] is a single predictable
//! branch returning [`CauseId::NONE`], so the hot path pays nothing.

use crate::engine::ComponentId;
use crate::time::SimTime;

/// Identifier of a [`PacketRecord`] — the currency of causal links.
///
/// `CauseId(0)` is reserved as [`CauseId::NONE`] ("no recorded cause"): the
/// parent of chain roots, and the value every emission returns while the
/// netdump is disabled. Real record ids start at 1 and increase in emission
/// order, so a parent id is always numerically smaller than its children.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CauseId(pub u64);

impl CauseId {
    /// The null cause: chain roots and disabled-netdump emissions.
    pub const NONE: CauseId = CauseId(0);

    /// True if this is [`CauseId::NONE`].
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// True if this refers to a real record.
    #[inline]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// Sentinel for [`PacketRecord::src`] / [`PacketRecord::dst`] when a record
/// has no (or no single) node attached.
pub const NO_NODE: u32 = u32::MAX;

/// Sentinel for [`PacketRecord::group`] / [`PacketRecord::seq`] when a record
/// is not keyed to a collective span.
pub const NO_KEY: u64 = u64::MAX;

/// What kind of wire-visible event a [`PacketRecord`] describes.
///
/// The per-kind detail fields `a` / `b` of the record are documented here;
/// see DESIGN.md ("Observability II") for the full schema table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CausalKind {
    /// Host enters a collective (parent: none — chain root). `a` = operand.
    HostEnter,
    /// Host posts a point-to-point operation (parent: none). `a` = length.
    HostPost,
    /// NIC decodes a host doorbell / dispatches protocol work
    /// (parent: the `HostEnter`/`HostPost` that rang the doorbell).
    NicDispatch,
    /// A DMA transfer begins (parent: the record that queued it). `a` = bytes.
    DmaStart,
    /// A DMA transfer completes (parent: its `DmaStart`). `a` = bytes.
    DmaDone,
    /// NIC commits a packet toward the fabric (parent: the stimulus that
    /// produced the packet). `a` = round for collective packets.
    Fire,
    /// Fabric accepts the packet onto the wire (parent: its `Fire`).
    /// `a` = wire bytes, `b` = destination rx-port queuing wait in ns.
    Wire,
    /// Loss injection consumed the packet (parent: its `Wire`). Terminal.
    Drop,
    /// Destination NIC accepts the packet (parent: its `Wire`).
    /// `a` = round for collective packets.
    Arrive,
    /// Receiver-driven NACK emitted (parent: the record that last advanced
    /// the stalled epoch). `a` = stalled round, `b` = nacked sender.
    Nack,
    /// A retransmission fired (parent: the NACK arrival that requested it,
    /// or the original `Fire` for timer-driven go-back-N). `a` = round or
    /// sequence number.
    Retransmit,
    /// NIC notifies the host of completion (parent: the stimulus that
    /// completed the operation). `a` = result value.
    Notify,
    /// Host observes completion (parent: its `Notify`). `a` = result value.
    HostExit,
}

impl CausalKind {
    /// Short stable name, used by exporters and the `why-slow` report.
    pub fn name(self) -> &'static str {
        match self {
            CausalKind::HostEnter => "host-enter",
            CausalKind::HostPost => "host-post",
            CausalKind::NicDispatch => "nic-dispatch",
            CausalKind::DmaStart => "dma-start",
            CausalKind::DmaDone => "dma-done",
            CausalKind::Fire => "fire",
            CausalKind::Wire => "wire",
            CausalKind::Drop => "drop",
            CausalKind::Arrive => "arrive",
            CausalKind::Nack => "nack",
            CausalKind::Retransmit => "retransmit",
            CausalKind::Notify => "notify",
            CausalKind::HostExit => "host-exit",
        }
    }

    /// Inverse of [`CausalKind::name`] — used when re-ingesting exported
    /// netdumps (e.g. `why-slow --replay`).
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "host-enter" => CausalKind::HostEnter,
            "host-post" => CausalKind::HostPost,
            "nic-dispatch" => CausalKind::NicDispatch,
            "dma-start" => CausalKind::DmaStart,
            "dma-done" => CausalKind::DmaDone,
            "fire" => CausalKind::Fire,
            "wire" => CausalKind::Wire,
            "drop" => CausalKind::Drop,
            "arrive" => CausalKind::Arrive,
            "nack" => CausalKind::Nack,
            "retransmit" => CausalKind::Retransmit,
            "notify" => CausalKind::Notify,
            "host-exit" => CausalKind::HostExit,
            _ => return None,
        })
    }

    /// Attribution category of the causal edge *ending* at a record of this
    /// kind: where the time between the parent record and this record was
    /// spent. The `why-slow` report sums critical-path edge durations by
    /// this label.
    pub fn edge_label(self) -> &'static str {
        match self {
            CausalKind::HostEnter | CausalKind::HostPost => "host",
            CausalKind::NicDispatch => "host->nic",
            CausalKind::DmaStart => "dma-queue",
            CausalKind::DmaDone => "dma",
            CausalKind::Fire => "nic",
            CausalKind::Wire => "nic",
            CausalKind::Drop => "wire",
            CausalKind::Arrive => "wire",
            CausalKind::Nack => "nack-detour",
            CausalKind::Retransmit => "retransmit-detour",
            CausalKind::Notify => "nic->host",
            CausalKind::HostExit => "nic->host",
        }
    }

    /// True for the kinds that only exist because something went wrong on
    /// the wire (loss, stall): their presence on a critical path means the
    /// barrier was bounded by a recovery detour.
    pub fn is_detour(self) -> bool {
        matches!(
            self,
            CausalKind::Nack | CausalKind::Retransmit | CausalKind::Drop
        )
    }
}

/// One wire-visible event with its causal parent.
///
/// `src`/`dst` are node ids ([`NO_NODE`] when not applicable); `group`/`seq`
/// key the record to a collective span exactly as the flight recorder keys
/// spans ([`NO_KEY`] when the record is not span-keyed — only `HostEnter`,
/// `Notify` and `HostExit` records need keys, the analyzer assigns everything
/// else to a span by walking parents). `a`/`b` are per-kind details (see
/// [`CausalKind`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PacketRecord {
    /// This record's id (dense, emission-ordered, starting at 1).
    pub id: CauseId,
    /// The record that caused this one ([`CauseId::NONE`] for chain roots).
    pub parent: CauseId,
    /// When the event happened.
    pub time: SimTime,
    /// Which component recorded it.
    pub component: ComponentId,
    /// What happened.
    pub kind: CausalKind,
    /// Acting/source node, or [`NO_NODE`].
    pub src: u32,
    /// Destination node, or [`NO_NODE`].
    pub dst: u32,
    /// Collective group key, or [`NO_KEY`].
    pub group: u64,
    /// Collective sequence (epoch) key, or [`NO_KEY`].
    pub seq: u64,
    /// Kind-specific detail (see [`CausalKind`]).
    pub a: u64,
    /// Kind-specific detail (see [`CausalKind`]).
    pub b: u64,
}

/// Builder-style argument bundle for [`crate::Ctx::packet`]. Keeps emission
/// sites readable without a seven-argument call.
#[derive(Clone, Copy, Debug)]
pub struct PacketLog {
    /// Causal parent ([`CauseId::NONE`] for roots).
    pub parent: CauseId,
    /// Event kind.
    pub kind: CausalKind,
    /// Acting/source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Collective group key.
    pub group: u64,
    /// Collective sequence key.
    pub seq: u64,
    /// Kind-specific detail.
    pub a: u64,
    /// Kind-specific detail.
    pub b: u64,
}

impl PacketLog {
    /// A record of `kind` caused by `parent`, with all optional fields at
    /// their sentinels.
    pub fn new(parent: CauseId, kind: CausalKind) -> Self {
        PacketLog {
            parent,
            kind,
            src: NO_NODE,
            dst: NO_NODE,
            group: NO_KEY,
            seq: NO_KEY,
            a: 0,
            b: 0,
        }
    }

    /// Attach source and destination nodes.
    pub fn nodes(mut self, src: u32, dst: u32) -> Self {
        self.src = src;
        self.dst = dst;
        self
    }

    /// Attach the acting node only.
    pub fn at_node(mut self, node: u32) -> Self {
        self.src = node;
        self
    }

    /// Attach the collective span key.
    pub fn key(mut self, group: u64, seq: u64) -> Self {
        self.group = group;
        self.seq = seq;
        self
    }

    /// Attach the per-kind detail fields.
    pub fn detail(mut self, a: u64, b: u64) -> Self {
        self.a = a;
        self.b = b;
        self
    }
}

/// Bounded buffer of [`PacketRecord`]s, owned by the engine.
///
/// Disabled by default; [`NetDump::enable`] arms it. When the buffer fills,
/// further records are counted in [`NetDump::dropped`] but not stored —
/// children of a dropped record still get real ids, so chains simply
/// terminate early at the hole (the `why-slow` gate asserts zero drops).
pub struct NetDump {
    enabled: bool,
    capacity: usize,
    next_id: u64,
    records: Vec<PacketRecord>,
    dropped: u64,
}

impl NetDump {
    /// Default record capacity: generous — a 16-node lossy barrier run of a
    /// few thousand iterations stays well under this.
    pub const DEFAULT_CAPACITY: usize = 1 << 21;

    /// A disabled netdump (records nothing, allocates nothing).
    pub fn disabled() -> Self {
        NetDump {
            enabled: false,
            capacity: Self::DEFAULT_CAPACITY,
            next_id: 1,
            records: Vec::new(),
            dropped: 0,
        }
    }

    /// Arm the dump with the default capacity.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Arm the dump with an explicit record capacity.
    pub fn enable_with_capacity(&mut self, capacity: usize) {
        self.enabled = true;
        self.capacity = capacity;
    }

    /// Is the dump recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one event, assigning it the next id. Returns the assigned id
    /// even when the buffer is full (the drop is counted instead).
    pub fn record(&mut self, time: SimTime, component: ComponentId, log: PacketLog) -> CauseId {
        let id = CauseId(self.next_id);
        self.next_id += 1;
        if self.records.len() < self.capacity {
            self.records.push(PacketRecord {
                id,
                parent: log.parent,
                time,
                component,
                kind: log.kind,
                src: log.src,
                dst: log.dst,
                group: log.group,
                seq: log.seq,
                a: log.a,
                b: log.b,
            });
        } else {
            self.dropped += 1;
        }
        id
    }

    /// The captured records, in emission order.
    pub fn records(&self) -> &[PacketRecord] {
        &self.records
    }

    /// Drain the captured records out of the buffer (harness use).
    pub fn take_records(&mut self) -> Vec<PacketRecord> {
        std::mem::take(&mut self.records)
    }

    /// Records lost to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Forget everything captured so far (between measurement phases). Ids
    /// keep increasing so post-clear records never collide with pre-clear
    /// parents.
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }
}

/// Binary-search a record slice (emission-ordered, so sorted by id) for `id`.
pub fn find(records: &[PacketRecord], id: CauseId) -> Option<&PacketRecord> {
    records
        .binary_search_by_key(&id, |r| r.id)
        .ok()
        .map(|i| &records[i])
}

/// Walk causal parents from `end` back to a chain root, returning the chain
/// in time order (root first, `end` last). The walk stops at a record with
/// no parent, or at a hole (a parent id that was never stored — e.g. lost to
/// the capacity bound).
pub fn chain_to(records: &[PacketRecord], end: CauseId) -> Vec<&PacketRecord> {
    let mut chain = Vec::new();
    let mut cur = end;
    while let Some(rec) = find(records, cur) {
        chain.push(rec);
        if rec.parent.is_none() {
            break;
        }
        cur = rec.parent;
    }
    chain.reverse();
    chain
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code
mod tests {
    use super::*;

    fn rec(dump: &mut NetDump, parent: CauseId, kind: CausalKind) -> CauseId {
        dump.record(
            SimTime::from_ns(dump.next_id * 10),
            ComponentId(0),
            PacketLog::new(parent, kind),
        )
    }

    #[test]
    fn ids_are_dense_and_walkable() {
        let mut dump = NetDump::disabled();
        dump.enable();
        let a = rec(&mut dump, CauseId::NONE, CausalKind::HostEnter);
        let b = rec(&mut dump, a, CausalKind::NicDispatch);
        let c = rec(&mut dump, b, CausalKind::Fire);
        // An unrelated side branch must not appear on the chain.
        let _side = rec(&mut dump, a, CausalKind::Fire);
        let d = rec(&mut dump, c, CausalKind::Wire);
        let chain = chain_to(dump.records(), d);
        let ids: Vec<CauseId> = chain.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![a, b, c, d]);
        assert!(chain[0].parent.is_none());
    }

    #[test]
    fn capacity_overflow_counts_drops_but_keeps_ids_fresh() {
        let mut dump = NetDump::disabled();
        dump.enable_with_capacity(2);
        let a = rec(&mut dump, CauseId::NONE, CausalKind::HostEnter);
        let b = rec(&mut dump, a, CausalKind::Fire);
        let c = rec(&mut dump, b, CausalKind::Wire);
        assert_eq!(dump.len(), 2);
        assert_eq!(dump.dropped(), 1);
        assert!(c > b && b > a, "ids keep increasing past the bound");
        // The chain from the dropped record terminates at the hole.
        assert!(chain_to(dump.records(), c).is_empty());
    }

    #[test]
    fn clear_preserves_id_monotonicity() {
        let mut dump = NetDump::disabled();
        dump.enable();
        let a = rec(&mut dump, CauseId::NONE, CausalKind::HostEnter);
        dump.clear();
        let b = rec(&mut dump, CauseId::NONE, CausalKind::HostEnter);
        assert!(b > a);
        assert_eq!(dump.len(), 1);
        assert_eq!(dump.dropped(), 0);
    }

    #[test]
    fn detour_kinds_are_flagged() {
        for k in [CausalKind::Nack, CausalKind::Retransmit, CausalKind::Drop] {
            assert!(k.is_detour(), "{} must be a detour", k.name());
        }
        for k in [
            CausalKind::HostEnter,
            CausalKind::HostPost,
            CausalKind::NicDispatch,
            CausalKind::DmaStart,
            CausalKind::DmaDone,
            CausalKind::Fire,
            CausalKind::Wire,
            CausalKind::Arrive,
            CausalKind::Notify,
            CausalKind::HostExit,
        ] {
            assert!(!k.is_detour(), "{} must not be a detour", k.name());
        }
    }
}
