//! Seeded, forkable randomness for reproducible simulations.
//!
//! Every stochastic decision in a simulation (packet drops, benchmark skew,
//! node permutations) draws from a [`SimRng`] derived from the run's master
//! seed. The generator is a self-contained ChaCha8 implementation (the build
//! environment is offline, so `rand_chacha` is not available): a
//! counter-based stream cipher, so forked sub-streams are independent and
//! the whole run replays bit-for-bit from the seed — the property the
//! determinism integration tests assert.

/// A deterministic random number generator owned by a simulation run.
///
/// ChaCha8 core: the 64-bit `seed` is expanded to the 256-bit key with
/// SplitMix64, the 64-bit `stream` selects an independent sub-stream (the
/// cipher nonce), and a 64-bit block counter advances through the stream.
#[derive(Clone, Debug)]
pub struct SimRng {
    key: [u32; 8],
    stream: u64,
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill needed".
    cursor: usize,
    seed: u64,
}

/// One SplitMix64 step; used to expand the seed into key material.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl SimRng {
    /// Create a generator from a 64-bit seed (stream 0).
    pub fn new(seed: u64) -> Self {
        let mut expand = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_exact_mut(2) {
            let word = splitmix64(&mut expand);
            pair[0] = word as u32;
            pair[1] = (word >> 32) as u32;
        }
        SimRng {
            key,
            stream: 0,
            counter: 0,
            buf: [0; 16],
            cursor: 16,
            seed,
        }
    }

    /// The seed this generator (or its root ancestor) was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent sub-stream, e.g. one per NIC or one per
    /// benchmark iteration. Streams with different `stream` values never
    /// overlap regardless of how much either is consumed (the stream id is
    /// the ChaCha nonce).
    pub fn fork(&self, stream: u64) -> SimRng {
        SimRng {
            key: self.key,
            stream,
            counter: 0,
            buf: [0; 16],
            cursor: 16,
            seed: self.seed,
        }
    }

    /// Generate the next 64-byte ChaCha8 block into `buf`.
    fn refill(&mut self) {
        // RFC 7539 layout: constants, key, block counter, nonce — with the
        // 64-bit counter in words 12-13 and the 64-bit stream id in 14-15.
        let mut x: [u32; 16] = [
            0x6170_7865,
            0x3320_646E,
            0x7962_2D32,
            0x6B20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let input = x;
        // 8 rounds = 4 double rounds (column + diagonal).
        for _ in 0..4 {
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for (out, inp) in x.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = x;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// Next raw 32-bit value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buf[self.cursor];
        self.cursor += 1;
        word
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    /// Fill `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Widening-multiply range reduction with a rejection step to remove
        // the modulo bias (Lemire's method).
        let mut m = self.next_u64() as u128 * bound as u128;
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                m = self.next_u64() as u128 * bound as u128;
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            lo
        } else {
            lo + self.unit() * (hi - lo)
        }
    }

    /// Fisher–Yates shuffle of a slice (used for the paper's random node
    /// permutations).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(8);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "seeds 7 and 8 produced near-identical streams");
    }

    #[test]
    fn forks_are_independent_and_reproducible() {
        let root = SimRng::new(99);
        let mut f1 = root.fork(1);
        let mut f2 = root.fork(2);
        let mut f1_again = root.fork(1);
        let s1: Vec<u64> = (0..16).map(|_| f1.next_u64()).collect();
        let s2: Vec<u64> = (0..16).map(|_| f2.next_u64()).collect();
        let s1b: Vec<u64> = (0..16).map(|_| f1_again.next_u64()).collect();
        assert_eq!(s1, s1b, "re-forking the same stream must replay it");
        assert_ne!(s1, s2, "different streams must differ");
    }

    #[test]
    fn fork_is_consumption_independent() {
        let mut root = SimRng::new(123);
        let pristine = root.fork(5);
        let mut a = pristine.clone();
        let expect: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        // Consuming the root must not perturb later forks of the same stream.
        for _ in 0..100 {
            root.next_u64();
        }
        let mut b = root.fork(5);
        let got: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(expect, got);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::new(2);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(3);
        for _ in 0..1_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = SimRng::new(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "below(7) missed a residue: {seen:?}"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(4);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        // With 64 elements the identity permutation is vanishingly unlikely.
        assert_ne!(v, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn range_f64_degenerate() {
        let mut r = SimRng::new(5);
        assert_eq!(r.range_f64(3.0, 3.0), 3.0);
        let x = r.range_f64(1.0, 2.0);
        assert!((1.0..2.0).contains(&x));
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut r = SimRng::new(6);
        let mut buf = [0u8; 37];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "37 zero bytes is implausible");
    }

    #[test]
    fn unit_is_in_half_open_range() {
        let mut r = SimRng::new(9);
        for _ in 0..1_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
