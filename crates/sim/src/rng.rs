//! Seeded, forkable randomness for reproducible simulations.
//!
//! Every stochastic decision in a simulation (packet drops, benchmark skew,
//! node permutations) draws from a [`SimRng`] derived from the run's master
//! seed. ChaCha8 is a counter-based generator, so forked sub-streams are
//! independent and the whole run replays bit-for-bit from the seed — the
//! property the determinism integration tests assert.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic random number generator owned by a simulation run.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: ChaCha8Rng,
    seed: u64,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator (or its root ancestor) was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent sub-stream, e.g. one per NIC or one per
    /// benchmark iteration. Streams with different `stream` values never
    /// overlap regardless of how much either is consumed.
    pub fn fork(&self, stream: u64) -> SimRng {
        let mut inner = ChaCha8Rng::seed_from_u64(self.seed);
        inner.set_stream(stream);
        SimRng {
            inner,
            seed: self.seed,
        }
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.inner.gen_range(0..bound)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            lo
        } else {
            self.inner.gen_range(lo..hi)
        }
    }

    /// Fisher–Yates shuffle of a slice (used for the paper's random node
    /// permutations).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        // rand's SliceRandom would also work; implemented inline so the only
        // RNG entry points are the methods of this type (easier to audit
        // determinism).
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i) as usize;
            slice.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(8);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "seeds 7 and 8 produced near-identical streams");
    }

    #[test]
    fn forks_are_independent_and_reproducible() {
        let root = SimRng::new(99);
        let mut f1 = root.fork(1);
        let mut f2 = root.fork(2);
        let mut f1_again = root.fork(1);
        let s1: Vec<u64> = (0..16).map(|_| f1.next_u64()).collect();
        let s2: Vec<u64> = (0..16).map(|_| f2.next_u64()).collect();
        let s1b: Vec<u64> = (0..16).map(|_| f1_again.next_u64()).collect();
        assert_eq!(s1, s1b, "re-forking the same stream must replay it");
        assert_ne!(s1, s2, "different streams must differ");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::new(2);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(3);
        for _ in 0..1_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(4);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        // With 64 elements the identity permutation is vanishingly unlikely.
        assert_ne!(v, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn range_f64_degenerate() {
        let mut r = SimRng::new(5);
        assert_eq!(r.range_f64(3.0, 3.0), 3.0);
        let x = r.range_f64(1.0, 2.0);
        assert!((1.0..2.0).contains(&x));
    }
}
