//! Rank-sharded conservative parallel execution of an [`Engine`].
//!
//! [`ParallelEngine`] partitions a fully-built engine's components across
//! worker threads (one shard each, see [`crate::partition`]), each running
//! its own event queue, and synchronizes them with the conservative
//! time-window protocol — with *adaptive per-shard lookahead*: at every
//! window boundary each shard publishes its earliest pending event time
//! `next_i`, and every worker (deterministically, from the same published
//! values) computes each shard's granted window end
//!
//! ```text
//! EAT(i) = min over m of ( next_m + dist(m, i) )     (dist(i, i) = 0)
//! W(j)   = min over i != j of ( EAT(i) + L(i, j) )
//! ```
//!
//! where `L(i, j)` is the per-pair minimum cross-shard message latency
//! ([`LatencyMatrix`]) and `dist` its shortest-path closure
//! ([`LatencyMatrix::closure`]). Shard `j` executes local events strictly
//! below `W(j)` without any further coordination. The *earliest-activation
//! time* `EAT(i)` lower-bounds the execution time of any event shard `i`
//! can ever run from this window on: events already in its queue are
//! `>= next_i >= EAT(i)`, and anything that could wake it travels a relay
//! chain from some shard `m` costing at least `next_m + dist(m, i)`. The
//! naïve bound `W(j) = min(next_i + L(i, j))` is **unsound**: a shard
//! whose queue is momentarily empty publishes `next = MAX` and constrains
//! nobody, yet a message from a busy shard can wake it and its reply then
//! lands in the past of a peer that ran ahead. With `EAT`, an idle shard
//! still constrains its neighbours through the cheapest chain that could
//! reach it. Safety: every event shard `i` executes this window has time
//! `t >= EAT(i)`, so anything it sends to `j` arrives at
//! `t + L(i, j) >= W(j)` — never inside `j`'s window. Monotonicity: each
//! shard's next minimum is at or past its previous window end, itself at
//! least its previous `EAT` (triangle inequality of `dist`), so granted
//! windows never move backwards across epochs and per-shard delivery
//! streams stay key-sorted. Progress: the shard(s) holding the global
//! minimum `H` get `W > H` (every `EAT >= H` and `L > 0`). The classic
//! global window `[H, H + min L)` is the special case where every pair
//! shares the worst-case bound; the per-pair form lets far-apart shards
//! run further ahead per synchronization. Cross-shard sends travel through
//! per-pair mailboxes and are integrated before the next window is chosen.
//!
//! ## Why the result is byte-identical to the sequential engine
//!
//! Event keys are content-based (`(time, source, per-source count)` — see
//! [`crate::engine`]), so an event's key does not depend on which thread
//! pushed it or when. Within one shard, events are delivered in exactly the
//! order the sequential engine would deliver them *restricted to that
//! shard*: same-time event creation is always intra-shard (cross-shard
//! arrivals lag by ≥ `L`), so each shard's pending set — and therefore its
//! pop sequence — evolves independently of the interleaving. Per-component
//! RNG streams and per-source send counts make every handler's behaviour a
//! function of its own delivery sequence alone. The global sequential
//! delivery order is then reconstructible after the fact: it is the k-way
//! merge of the per-shard delivery sequences that always takes the stream
//! whose *head event key* is smallest (the sequential engine's pending-set
//! minimum always lives at the head of exactly one shard's stream).
//!
//! ## Deterministic observability merge
//!
//! Trace records, flight-recorder folds, and causal netdump records must
//! appear in the *global* delivery order to be byte-identical with a
//! sequential run. Each shard therefore captures raw per-delivery
//! observability ([`RawObs`]) — one entry per delivered event (record-less
//! events included; the merge order is decided by delivered-event keys, not
//! record keys) — and after the run the shards' streams are k-way merged by
//! head event key and replayed into the real trace/recorder/netdump.
//! Netdump ids are assigned at replay time, so they match the sequential
//! run exactly; during the run shards hand out *provisional* ids
//! (`(shard + 1) << 40 | index`) which the replay remaps — including ids
//! that components stored and re-use as causal parents many windows later.
//!
//! ## Lock-free mailboxes, scratch ownership, steady-state allocation
//!
//! Cross-shard batches move through per-`(from, to)` pairs of bounded SPSC
//! rings ([`crate::queue::SpscRing`]): the sender pushes its full outbox
//! vector onto the pair's `full` ring after executing a window (between
//! the two barriers), and the receiver drains it at its next window open
//! (before barrier 1), returning the emptied vector on the pair's `free`
//! ring for the sender to reuse. The two-barrier protocol means a pair can
//! hold at most one undrained batch at a time, so capacity 2 never
//! overflows, a deposit is one `Release` store, and no third shard ever
//! contends on the pair. Draining *before* the window decision preserves
//! the identity argument: a batch deposited in window `w` is integrated
//! into the receiver's queue before the window-`w+1` horizon is computed,
//! exactly when the old mutex mailboxes handed it over. Every mutable
//! structure remains owned by exactly one thread at any time, and the
//! vector ping-pong keeps a steady-state window allocation-free; the
//! counting-allocator gate (`tests/alloc_steady.rs`) enforces this.
//!
//! ## Documented divergences from the sequential engine
//!
//! * **Event budget** ([`ParallelEngine::run_bounded`]): enforced at window
//!   granularity (the run stops at the first window boundary at or past the
//!   budget), not per event. Time deadlines are exact.
//! * **Halt**: a [`crate::Ctx::halt`] stops the halting shard immediately
//!   but other shards finish the current window first. The barrier driver
//!   layer never halts mid-protocol, so the parity witness is unaffected.

use crate::causal::{CauseId, NetDump, PacketLog};
use crate::engine::{ComponentId, Engine, RunOutcome};
use crate::ledger::{Ledger, LedgerRecord};
use crate::partition::{LatencyMatrix, ShardMap};
use crate::queue::{pack, SchedulerKind, SpscRing};
use crate::span::{FlightRecorder, SpanEvent};
use crate::telemetry::{EngineProf, ProfClock, ShardProf};
use crate::time::SimTime;
use crate::trace::{Trace, TraceRecord};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

/// Routes a shard's sends: local targets to the local queue, cross-shard
/// targets into per-destination outboxes.
pub(crate) struct ShardLink<M> {
    table: Arc<Vec<u32>>,
    my_shard: u32,
    /// Granted window end (exclusive, ns) of every *destination* shard for
    /// the window currently executing; a cross-shard send to shard `j`
    /// must land at or beyond `window_ends[j]` (the per-pair lookahead
    /// guarantee). Recomputed by the worker at every window decision.
    pub(crate) window_ends: Vec<u64>,
    /// One outbox per destination shard (own slot unused).
    pub(crate) outboxes: Vec<Vec<(u128, ComponentId, M)>>,
}

impl<M> ShardLink<M> {
    #[inline]
    pub(crate) fn is_local(&self, target: ComponentId) -> bool {
        self.table[target.0] == self.my_shard
    }

    /// This link's own shard index (for window-bound sanity checks).
    #[inline]
    pub(crate) fn my_shard(&self) -> usize {
        self.my_shard as usize
    }

    #[inline]
    pub(crate) fn deposit(&mut self, key: u128, at: SimTime, target: ComponentId, msg: M) {
        let shard = self.table[target.0] as usize;
        debug_assert!(
            at.as_ns() >= self.window_ends[shard],
            "cross-shard send from shard {} at {at} (target {target:?}) lands inside \
             shard {shard}'s window (end {} ns): the pair's lookahead is overstated",
            self.my_shard,
            self.window_ends[shard]
        );
        self.outboxes[shard].push((key, target, msg));
    }
}

/// Per-delivery observability summary: how many raw span/packet records the
/// handler of the event with this key emitted.
pub(crate) struct RawEvent {
    pub(crate) key: u128,
    pub(crate) spans: u32,
    pub(crate) pkts: u32,
    pub(crate) lgr: u32,
}

/// Bit position of the shard tag inside a provisional [`CauseId`].
const PKT_TAG_SHIFT: u32 = 40;
const PKT_IDX_MASK: u64 = (1 << PKT_TAG_SHIFT) - 1;

/// A shard's raw observability capture for the deterministic post-run
/// merge: one [`RawEvent`] per delivered event, plus the span/packet
/// payloads in emission order.
pub(crate) struct RawObs {
    pub(crate) record_spans: bool,
    pub(crate) record_pkts: bool,
    pub(crate) record_ledger: bool,
    pub(crate) events: Vec<RawEvent>,
    pub(crate) spans: Vec<(SimTime, ComponentId, SpanEvent)>,
    pub(crate) pkts: Vec<(SimTime, ComponentId, PacketLog)>,
    /// Occupancy records carry no ids, so the merge replays them verbatim.
    pub(crate) ledger: Vec<LedgerRecord>,
    /// Packets already merged in earlier runs: the global raw index of
    /// `pkts[0]` (provisional ids must stay valid across run calls).
    pub(crate) pkt_base: u64,
    /// `(shard + 1) << PKT_TAG_SHIFT`, baked into provisional ids.
    shard_tag: u64,
}

impl RawObs {
    fn new(shard: usize) -> Self {
        RawObs {
            record_spans: false,
            record_pkts: false,
            record_ledger: false,
            events: Vec::new(),
            spans: Vec::new(),
            pkts: Vec::new(),
            ledger: Vec::new(),
            pkt_base: 0,
            shard_tag: (shard as u64 + 1) << PKT_TAG_SHIFT,
        }
    }

    /// Capture one packet record, returning its provisional id.
    pub(crate) fn record_packet(
        &mut self,
        time: SimTime,
        component: ComponentId,
        log: PacketLog,
    ) -> CauseId {
        let idx = self.pkt_base + self.pkts.len() as u64;
        debug_assert!(idx <= PKT_IDX_MASK, "provisional packet index overflow");
        self.pkts.push((time, component, log));
        CauseId(self.shard_tag | idx)
    }
}

#[inline]
fn is_provisional(id: CauseId) -> bool {
    id.0 > PKT_IDX_MASK
}

/// One worker shard: its engine slice plus the cross-shard plumbing.
struct ShardState<M: 'static> {
    engine: Engine<M>,
    link: ShardLink<M>,
    raw: RawObs,
    /// Self-profiler, armed by [`ParallelEngine::enable_prof`]. `None` is
    /// the zero-cost default: every hook in the worker loop is one
    /// `Option` branch per *window*, and the disabled path allocates
    /// nothing (the steady-state allocation gate runs with it off).
    prof: Option<Box<ShardProf>>,
}

/// One batch of cross-shard sends: `(event key, destination, message)`
/// triples from one sender window.
type Batch<M> = Vec<(u128, ComponentId, M)>;

/// One cross-shard mailbox (a single `(from, to)` shard pair): full
/// batches travel sender → receiver on `full`; emptied vectors come back
/// on `free` so the steady state recycles instead of allocating. The
/// two-barrier window protocol bounds the pair to one undrained batch at
/// a time, so capacity 2 on each ring can never overflow.
struct Mailbox<M> {
    full: SpscRing<Batch<M>>,
    free: SpscRing<Batch<M>>,
}

impl<M> Mailbox<M> {
    fn new() -> Self {
        Mailbox {
            full: SpscRing::new(2),
            free: SpscRing::new(2),
        }
    }
}

/// The rank-sharded conservative parallel engine.
///
/// Wraps a fully-built (but not yet run) [`Engine`], splitting its
/// components, queue, and RNG streams across `shards` workers. All result
/// surfaces — counters, trace, flight recorder, netdump, `now`,
/// `events_processed` — are byte-identical to running the original engine
/// sequentially, for any shard count (see the module docs for why).
pub struct ParallelEngine<M: 'static> {
    /// The residual original engine: owns the merged observability, the
    /// counters, the clock, and the external send counter. Its component
    /// slots and queue are empty (moved into the shards).
    base: Engine<M>,
    shards: Vec<ShardState<M>>,
    table: Arc<Vec<u32>>,
    /// Per-pair conservative lookahead bounds funding the adaptive windows.
    latency: LatencyMatrix,
    /// Per-pair mailboxes, indexed `[from * K + to]`.
    mail: Vec<Mailbox<M>>,
    /// Per shard: global raw packet index → real netdump id.
    pkt_remap: Vec<Vec<CauseId>>,
    /// Components per shard (partition balance, reported by the profiler).
    shard_sizes: Vec<usize>,
}

impl<M: Send + 'static> ParallelEngine<M> {
    /// Split `engine` across `map.shards()` workers with one global
    /// conservative lookahead (the minimum latency of any cross-shard
    /// message; typically the fabric's one-hop zero-byte latency). Every
    /// pair gets the same bound — see [`ParallelEngine::with_latency`] for
    /// the per-pair form.
    ///
    /// # Panics
    /// Panics if the map does not cover the engine's components or if the
    /// lookahead is zero (a zero lookahead admits no parallel window).
    pub fn new(engine: Engine<M>, map: ShardMap, lookahead: SimTime) -> Self {
        let latency = LatencyMatrix::uniform(map.shards(), lookahead);
        Self::with_latency(engine, map, latency)
    }

    /// Split `engine` across `map.shards()` workers with per-pair
    /// conservative lookahead bounds: `latency.get(i, j)` must lower-bound
    /// every message a shard-`i` component can send to a shard-`j`
    /// component. Tighter-than-true bounds are always safe (uniform global
    /// minimum is the degenerate case); overstated bounds break the
    /// byte-identity guarantee and trip a debug assert on deposit.
    ///
    /// # Panics
    /// Panics if the map does not cover the engine's components or if the
    /// matrix's shard count differs from the map's.
    pub fn with_latency(mut engine: Engine<M>, map: ShardMap, latency: LatencyMatrix) -> Self {
        assert!(
            map.table().len() == engine.len(),
            "shard map covers {} components, engine has {}",
            map.table().len(),
            engine.len()
        );
        assert!(
            latency.shards() == map.shards(),
            "latency matrix covers {} shards, map has {}",
            latency.shards(),
            map.shards()
        );
        let k = map.shards();
        let shard_sizes = map.shard_sizes();
        let table = Arc::new(map.into_table());
        let num = engine.len();
        let kind = engine.scheduler_kind();
        let mut shards: Vec<ShardState<M>> = (0..k)
            .map(|s| ShardState {
                engine: Engine::shard_shell(&engine, num, kind),
                link: ShardLink {
                    table: Arc::clone(&table),
                    my_shard: s as u32,
                    window_ends: vec![0; k],
                    outboxes: (0..k).map(|_| Vec::new()).collect(),
                },
                raw: RawObs::new(s),
                prof: None,
            })
            .collect();
        // Move every component (and its RNG stream and send count) to its
        // owning shard.
        for c in 0..num {
            let s = table[c] as usize;
            let sh = &mut shards[s].engine;
            sh.components[c] = engine.components[c].take();
            sh.srcs[c] = std::mem::take(&mut engine.srcs[c]);
        }
        // Route the pending (externally scheduled) events to their shards,
        // keys preserved.
        while let Some(ev) = engine.queue.pop() {
            let s = table[ev.target.0] as usize;
            shards[s].engine.queue.push(ev.key, ev.target, ev.msg);
        }
        let mail = (0..k * k).map(|_| Mailbox::new()).collect();
        ParallelEngine {
            base: engine,
            shards,
            table,
            latency,
            mail,
            pkt_remap: (0..k).map(|_| Vec::new()).collect(),
            shard_sizes,
        }
    }

    /// Replace the lookahead bounds, e.g. after swapping the wire model of
    /// a built cluster. The new matrix must be sound for the *new* message
    /// latencies — callers that only know a global minimum should pass
    /// [`LatencyMatrix::uniform`].
    ///
    /// # Panics
    /// Panics if the matrix's shard count differs from the engine's.
    pub fn set_latency(&mut self, latency: LatencyMatrix) {
        assert!(
            latency.shards() == self.shards.len(),
            "latency matrix covers {} shards, engine has {}",
            latency.shards(),
            self.shards.len()
        );
        self.latency = latency;
    }

    /// Arm the per-shard self-profiler (see [`crate::telemetry`]). All
    /// shards share one wall-clock epoch so their timelines align; calling
    /// this again restarts the capture from empty.
    pub fn enable_prof(&mut self) {
        let k = self.shards.len();
        let clock = ProfClock::new();
        for sh in &mut self.shards {
            sh.prof = Some(Box::new(ShardProf::new(k, clock)));
        }
    }

    /// Snapshot the self-profiler capture, or `None` if
    /// [`ParallelEngine::enable_prof`] was never called.
    pub fn prof_snapshot(&self) -> Option<EngineProf> {
        let mut data = Vec::with_capacity(self.shards.len());
        for (s, sh) in self.shards.iter().enumerate() {
            let mut d = sh.prof.as_ref()?.data(s as u32);
            d.components = self.shard_sizes.get(s).copied().unwrap_or(0);
            data.push(d);
        }
        Some(EngineProf {
            shards: self.shards.len(),
            lookahead_ns: self.latency.min_ns(),
            data,
        })
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The minimum conservative lookahead over all shard pairs (what a
    /// global-window protocol would grant every window).
    pub fn lookahead(&self) -> SimTime {
        SimTime::from_ns(self.latency.min_ns())
    }

    /// Which scheduler implementation the shard queues run on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.base.queue.kind()
    }

    /// Current simulated time (maximum over shard clocks — the timestamp of
    /// the globally last delivered event, as in the sequential engine).
    pub fn now(&self) -> SimTime {
        self.base.now
    }

    /// Total events delivered (all shards).
    pub fn events_processed(&self) -> u64 {
        self.base.events_processed
    }

    /// The merged counters.
    pub fn counters(&self) -> &crate::counters::Counters {
        &self.base.counters
    }

    /// Mutable access to the merged counters.
    pub fn counters_mut(&mut self) -> &mut crate::counters::Counters {
        &mut self.base.counters
    }

    /// The merged trace ring.
    pub fn trace(&self) -> &Trace {
        &self.base.trace
    }

    /// Enable tracing (merged deterministically after each run).
    pub fn enable_trace(&mut self) {
        self.base.trace.enable();
    }

    /// Mutable access to the merged trace.
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.base.trace
    }

    /// The merged flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.base.recorder
    }

    /// Enable flight recording.
    pub fn enable_recorder(&mut self) {
        self.base.recorder.enable();
    }

    /// Mutable access to the merged flight recorder.
    pub fn recorder_mut(&mut self) -> &mut FlightRecorder {
        &mut self.base.recorder
    }

    /// The merged causal netdump.
    pub fn netdump(&self) -> &NetDump {
        &self.base.netdump
    }

    /// Enable causal packet capture.
    pub fn enable_netdump(&mut self) {
        self.base.netdump.enable();
    }

    /// Mutable access to the merged netdump.
    pub fn netdump_mut(&mut self) -> &mut NetDump {
        &mut self.base.netdump
    }

    /// The merged resource-occupancy ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.base.ledger
    }

    /// Enable occupancy-ledger capture.
    pub fn enable_ledger(&mut self) {
        self.base.ledger.enable();
    }

    /// Mutable access to the merged occupancy ledger.
    pub fn ledger_mut(&mut self) -> &mut Ledger {
        &mut self.base.ledger
    }

    /// Downcast access to a concrete component (routed to its shard).
    pub fn component_ref<T: 'static>(&self, id: ComponentId) -> Option<&T> {
        self.shards[self.table[id.0] as usize]
            .engine
            .component_ref(id)
    }

    /// Downcast mutable access to a concrete component.
    pub fn component_mut<T: 'static>(&mut self, id: ComponentId) -> Option<&mut T> {
        self.shards[self.table[id.0] as usize]
            .engine
            .component_mut(id)
    }

    /// Inject an event from outside the simulation (key source 0, exactly
    /// as [`Engine::schedule_at`] — same count, same key, same delivery).
    pub fn schedule_at(&mut self, at: SimTime, target: ComponentId, msg: M) {
        assert!(at >= self.base.now, "scheduling into the past");
        let key = pack(at, self.base.ext_count);
        self.base.ext_count += 1;
        let s = self.table[target.0] as usize;
        self.shards[s].engine.queue.push(key, target, msg);
    }

    /// Inject an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, target: ComponentId, msg: M) {
        self.schedule_at(self.base.now + delay, target, msg);
    }

    /// Earliest pending event time across all shards.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.shards
            .iter()
            .filter_map(|s| s.engine.queue.peek_time())
            .min()
    }

    /// Total pending events across all shards.
    pub fn pending_events(&self) -> usize {
        self.shards.iter().map(|s| s.engine.queue.len()).sum()
    }

    /// Run until every queue drains or a component halts. Returns the final
    /// simulated time.
    pub fn run(&mut self) -> SimTime {
        self.run_bounded(SimTime::MAX, u64::MAX);
        self.base.now
    }

    /// Run until `deadline` (inclusive), every queue drains, or a component
    /// halts.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.run_bounded(deadline, u64::MAX)
    }

    /// Run with a time deadline and an event budget. The deadline is exact
    /// (identical delivered-event set to the sequential engine); the budget
    /// is enforced at window granularity — see the module docs.
    pub fn run_bounded(&mut self, deadline: SimTime, max_events: u64) -> RunOutcome {
        let k = self.shards.len();
        let deadline_ns = deadline.as_ns();
        let record_spans = self.base.trace.is_enabled() || self.base.recorder.is_enabled();
        let record_pkts = self.base.netdump.is_enabled();
        let record_ledger = self.base.ledger.is_enabled();
        let obs = record_spans || record_pkts || record_ledger;
        for sh in &mut self.shards {
            sh.engine.halted = false;
            sh.raw.record_spans = record_spans;
            sh.raw.record_pkts = record_pkts;
            sh.raw.record_ledger = record_ledger;
        }
        let mins: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(u64::MAX)).collect();
        let events: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
        let halted = AtomicBool::new(false);
        let barrier = Barrier::new(k);
        // Split the shard list (mutably, per worker) from the shared
        // read-only latency matrix so the worker closures can borrow both.
        let latency = &self.latency;
        // Shortest-path closure of the latency graph: bounds wake-up relay
        // chains in the window computation (see `shard_worker`). O(k³)
        // once per call, against O(k²) per window below.
        let relay = latency.closure();
        let relay = relay.as_slice();
        if k == 1 {
            // One shard needs no worker thread: run the window loop on the
            // calling thread (a 1-party barrier never blocks, the atomics
            // are uncontended). With no other shard to constrain it, the
            // adaptive bound degenerates to the deadline, so the whole run
            // is a single window — the sequential loop plus once-per-call
            // overhead, which is what the engine-sweep overhead gate
            // measures.
            shard_worker(
                0,
                1,
                &mut self.shards[0],
                &mins,
                &events,
                &halted,
                &barrier,
                &self.mail,
                deadline_ns,
                max_events,
                latency,
                relay,
                obs,
            );
        } else {
            let mail = &self.mail;
            let mins = &mins;
            let events = &events;
            let halted = &halted;
            let barrier = &barrier;
            std::thread::scope(|scope| {
                for (me, state) in self.shards.iter_mut().enumerate() {
                    scope.spawn(move || {
                        shard_worker(
                            me,
                            k,
                            state,
                            mins,
                            events,
                            halted,
                            barrier,
                            mail,
                            deadline_ns,
                            max_events,
                            latency,
                            relay,
                            obs,
                        );
                    });
                }
            });
        }
        // Single-threaded epilogue: fold shard results into the base engine.
        let delivered: u64 = events.iter().map(|e| e.load(Ordering::Relaxed)).sum();
        self.base.events_processed += delivered;
        for sh in &mut self.shards {
            sh.engine.counters.drain_into(&mut self.base.counters);
            if sh.engine.now > self.base.now {
                self.base.now = sh.engine.now;
            }
        }
        if obs {
            self.merge_observability();
        }
        // Reconstruct the (unanimous) worker decision from the final
        // published state, in the same priority order the workers used.
        if halted.load(Ordering::Relaxed) {
            return RunOutcome::Halted;
        }
        let h = mins
            .iter()
            .map(|m| m.load(Ordering::Relaxed))
            .min()
            .unwrap_or(u64::MAX);
        if h == u64::MAX {
            RunOutcome::Idle
        } else if h > deadline_ns {
            RunOutcome::DeadlineReached
        } else {
            RunOutcome::BudgetExhausted
        }
    }

    /// Replay each shard's raw observability into the base trace, flight
    /// recorder, and netdump, in the exact global delivery order: a k-way
    /// merge that always takes the shard whose *head delivered-event key*
    /// is smallest. Packet parents recorded under provisional shard ids are
    /// remapped to the real ids assigned here.
    fn merge_observability(&mut self) {
        let ParallelEngine {
            base,
            shards,
            pkt_remap,
            ..
        } = self;
        let k = shards.len();
        let mut cursors = vec![(0usize, 0usize, 0usize, 0usize); k];
        loop {
            let mut best: Option<(u128, usize)> = None;
            for (s, sh) in shards.iter().enumerate() {
                if let Some(ev) = sh.raw.events.get(cursors[s].0) {
                    if best.is_none_or(|(bk, _)| ev.key < bk) {
                        best = Some((ev.key, s));
                    }
                }
            }
            let Some((_, s)) = best else { break };
            let (e, sp, pk, lg) = cursors[s];
            let raw = &shards[s].raw;
            let ev = &raw.events[e];
            for (time, component, event) in &raw.spans[sp..sp + ev.spans as usize] {
                base.trace.emit(TraceRecord {
                    time: *time,
                    component: *component,
                    event: *event,
                });
                base.recorder.observe(*time, event);
            }
            for (time, component, log) in &raw.pkts[pk..pk + ev.pkts as usize] {
                let mut log = *log;
                if is_provisional(log.parent) {
                    let from = ((log.parent.0 >> PKT_TAG_SHIFT) - 1) as usize;
                    let idx = (log.parent.0 & PKT_IDX_MASK) as usize;
                    log.parent = pkt_remap[from][idx];
                }
                let real = base.netdump.record(*time, *component, log);
                debug_assert!(
                    real.0 <= PKT_IDX_MASK,
                    "netdump id space collided with provisional shard ids"
                );
                pkt_remap[s].push(real);
            }
            for record in &raw.ledger[lg..lg + ev.lgr as usize] {
                base.ledger.record(*record);
            }
            cursors[s] = (
                e + 1,
                sp + ev.spans as usize,
                pk + ev.pkts as usize,
                lg + ev.lgr as usize,
            );
        }
        for (s, sh) in shards.iter_mut().enumerate() {
            debug_assert_eq!(cursors[s].1, sh.raw.spans.len(), "unmerged spans");
            debug_assert_eq!(cursors[s].2, sh.raw.pkts.len(), "unmerged packets");
            debug_assert_eq!(cursors[s].3, sh.raw.ledger.len(), "unmerged ledger records");
            sh.raw.pkt_base += sh.raw.pkts.len() as u64;
            sh.raw.events.clear();
            sh.raw.spans.clear();
            sh.raw.pkts.clear();
            sh.raw.ledger.clear();
        }
    }
}

impl<M: 'static> Engine<M> {
    /// An empty shard-sized shell sharing `proto`'s clock, master RNG, and
    /// scheduler kind; components are moved in by the parallel split.
    fn shard_shell(proto: &Engine<M>, num: usize, kind: SchedulerKind) -> Engine<M> {
        let mut shell = Engine::with_scheduler(0, kind);
        shell.rng = proto.rng.clone();
        shell.now = proto.now;
        shell.components = (0..num).map(|_| None).collect();
        shell.srcs = (0..num).map(|_| Default::default()).collect();
        shell
    }
}

/// Which engine flavour a cluster builder should produce. Spec structs
/// carry one of these plus a requested shard count; [`EngineSel::resolve`]
/// turns the pair into the concrete choice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineSel {
    /// Parallel iff more than one shard was requested (the sane default:
    /// a one-shard parallel engine is pure overhead).
    #[default]
    Auto,
    /// Always the sequential engine, whatever the shard count — the
    /// byte-identity oracle, and the only flavour that can single-step.
    Sequential,
    /// Always the parallel engine, even at one shard. Exists so the
    /// engine-overhead gate can measure the windowing machinery's cost
    /// against the sequential baseline.
    Parallel,
}

impl EngineSel {
    /// Resolve the selection against a requested shard count (clamped to
    /// at least 1): returns `(use_parallel, effective_shards)`.
    pub fn resolve(self, shards: usize) -> (bool, usize) {
        let shards = shards.max(1);
        match self {
            EngineSel::Auto => (shards > 1, shards),
            EngineSel::Sequential => (false, 1),
            EngineSel::Parallel => (true, shards),
        }
    }
}

/// Either engine flavour behind one API, so a harness can pick sequential
/// or parallel execution per run without duplicating its driver code.
///
/// Every accessor matches the underlying engines' semantics exactly; the
/// two produce byte-identical results (see [`crate::parallel`]), so
/// switching variants never changes what a harness observes — only how
/// much wall-clock it takes to observe it.
pub enum ExecEngine<M: 'static> {
    /// The plain single-threaded engine.
    Seq(Engine<M>),
    /// The rank-sharded conservative parallel engine.
    Par(ParallelEngine<M>),
}

impl<M: Send + 'static> ExecEngine<M> {
    /// `"sequential"` or `"parallel"` — recorded in results manifests.
    pub fn kind(&self) -> &'static str {
        match self {
            ExecEngine::Seq(_) => "sequential",
            ExecEngine::Par(_) => "parallel",
        }
    }

    /// Number of worker shards (1 for the sequential engine).
    pub fn shards(&self) -> usize {
        match self {
            ExecEngine::Seq(_) => 1,
            ExecEngine::Par(p) => p.shards(),
        }
    }

    /// Which scheduler implementation the event queue(s) run on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        match self {
            ExecEngine::Seq(e) => e.scheduler_kind(),
            ExecEngine::Par(p) => p.scheduler_kind(),
        }
    }

    /// Run until the queue drains or a component halts; returns final time.
    pub fn run(&mut self) -> SimTime {
        match self {
            ExecEngine::Seq(e) => e.run(),
            ExecEngine::Par(p) => p.run(),
        }
    }

    /// Run until `deadline` (inclusive), drain, or halt.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        match self {
            ExecEngine::Seq(e) => e.run_until(deadline),
            ExecEngine::Par(p) => p.run_until(deadline),
        }
    }

    /// Run with a time deadline and an event budget (window-granular on the
    /// parallel engine — see [`ParallelEngine::run_bounded`]).
    pub fn run_bounded(&mut self, deadline: SimTime, max_events: u64) -> RunOutcome {
        match self {
            ExecEngine::Seq(e) => e.run_bounded(deadline, max_events),
            ExecEngine::Par(p) => p.run_bounded(deadline, max_events),
        }
    }

    /// Deliver the single earliest event (sequential engine only).
    ///
    /// # Panics
    /// Panics on the parallel engine: single-stepping is inherently a
    /// sequential-timeline operation.
    pub fn step(&mut self) -> bool {
        match self {
            ExecEngine::Seq(e) => e.step(),
            ExecEngine::Par(_) => {
                panic!("step(): single-stepping needs the sequential engine")
            }
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        match self {
            ExecEngine::Seq(e) => e.now(),
            ExecEngine::Par(p) => p.now(),
        }
    }

    /// Total events delivered so far.
    pub fn events_processed(&self) -> u64 {
        match self {
            ExecEngine::Seq(e) => e.events_processed(),
            ExecEngine::Par(p) => p.events_processed(),
        }
    }

    /// Earliest pending event time across all queues.
    pub fn next_event_time(&self) -> Option<SimTime> {
        match self {
            ExecEngine::Seq(e) => e.next_event_time(),
            ExecEngine::Par(p) => p.next_event_time(),
        }
    }

    /// Total pending events across all queues.
    pub fn pending_events(&self) -> usize {
        match self {
            ExecEngine::Seq(e) => e.pending_events(),
            ExecEngine::Par(p) => p.pending_events(),
        }
    }

    /// Inject an event from outside the simulation at absolute time `at`.
    pub fn schedule_at(&mut self, at: SimTime, target: ComponentId, msg: M) {
        match self {
            ExecEngine::Seq(e) => e.schedule_at(at, target, msg),
            ExecEngine::Par(p) => p.schedule_at(at, target, msg),
        }
    }

    /// Inject an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, target: ComponentId, msg: M) {
        match self {
            ExecEngine::Seq(e) => e.schedule_in(delay, target, msg),
            ExecEngine::Par(p) => p.schedule_in(delay, target, msg),
        }
    }

    /// The engine-wide (merged) counters.
    pub fn counters(&self) -> &crate::counters::Counters {
        match self {
            ExecEngine::Seq(e) => e.counters(),
            ExecEngine::Par(p) => p.counters(),
        }
    }

    /// Mutable counters access (clearing between phases).
    pub fn counters_mut(&mut self) -> &mut crate::counters::Counters {
        match self {
            ExecEngine::Seq(e) => e.counters_mut(),
            ExecEngine::Par(p) => p.counters_mut(),
        }
    }

    /// The (merged) trace ring.
    pub fn trace(&self) -> &Trace {
        match self {
            ExecEngine::Seq(e) => e.trace(),
            ExecEngine::Par(p) => p.trace(),
        }
    }

    /// Enable tracing.
    pub fn enable_trace(&mut self) {
        match self {
            ExecEngine::Seq(e) => e.enable_trace(),
            ExecEngine::Par(p) => p.enable_trace(),
        }
    }

    /// Mutable trace access.
    pub fn trace_mut(&mut self) -> &mut Trace {
        match self {
            ExecEngine::Seq(e) => e.trace_mut(),
            ExecEngine::Par(p) => p.trace_mut(),
        }
    }

    /// The (merged) flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        match self {
            ExecEngine::Seq(e) => e.recorder(),
            ExecEngine::Par(p) => p.recorder(),
        }
    }

    /// Enable flight recording.
    pub fn enable_recorder(&mut self) {
        match self {
            ExecEngine::Seq(e) => e.enable_recorder(),
            ExecEngine::Par(p) => p.enable_recorder(),
        }
    }

    /// Mutable flight-recorder access.
    pub fn recorder_mut(&mut self) -> &mut FlightRecorder {
        match self {
            ExecEngine::Seq(e) => e.recorder_mut(),
            ExecEngine::Par(p) => p.recorder_mut(),
        }
    }

    /// The (merged) causal netdump.
    pub fn netdump(&self) -> &NetDump {
        match self {
            ExecEngine::Seq(e) => e.netdump(),
            ExecEngine::Par(p) => p.netdump(),
        }
    }

    /// Enable causal packet capture.
    pub fn enable_netdump(&mut self) {
        match self {
            ExecEngine::Seq(e) => e.enable_netdump(),
            ExecEngine::Par(p) => p.enable_netdump(),
        }
    }

    /// Mutable netdump access.
    pub fn netdump_mut(&mut self) -> &mut NetDump {
        match self {
            ExecEngine::Seq(e) => e.netdump_mut(),
            ExecEngine::Par(p) => p.netdump_mut(),
        }
    }

    /// The (merged) resource-occupancy ledger.
    pub fn ledger(&self) -> &Ledger {
        match self {
            ExecEngine::Seq(e) => e.ledger(),
            ExecEngine::Par(p) => p.ledger(),
        }
    }

    /// Enable occupancy-ledger capture.
    pub fn enable_ledger(&mut self) {
        match self {
            ExecEngine::Seq(e) => e.enable_ledger(),
            ExecEngine::Par(p) => p.enable_ledger(),
        }
    }

    /// Mutable occupancy-ledger access.
    pub fn ledger_mut(&mut self) -> &mut Ledger {
        match self {
            ExecEngine::Seq(e) => e.ledger_mut(),
            ExecEngine::Par(p) => p.ledger_mut(),
        }
    }

    /// Downcast access to a concrete component.
    pub fn component_ref<T: 'static>(&self, id: ComponentId) -> Option<&T> {
        match self {
            ExecEngine::Seq(e) => e.component_ref(id),
            ExecEngine::Par(p) => p.component_ref(id),
        }
    }

    /// Downcast mutable access to a concrete component.
    pub fn component_mut<T: 'static>(&mut self, id: ComponentId) -> Option<&mut T> {
        match self {
            ExecEngine::Seq(e) => e.component_mut(id),
            ExecEngine::Par(p) => p.component_mut(id),
        }
    }

    /// Arm the parallel engine's self-profiler. A no-op on the sequential
    /// engine: it has no shard structure to profile, and its "profile"
    /// would be one busy lane — run the parallel flavour to see where the
    /// wall time goes.
    pub fn enable_prof(&mut self) {
        if let ExecEngine::Par(p) = self {
            p.enable_prof();
        }
    }

    /// The self-profiler capture, if armed (always `None` on the
    /// sequential engine).
    pub fn prof_snapshot(&self) -> Option<EngineProf> {
        match self {
            ExecEngine::Seq(_) => None,
            ExecEngine::Par(p) => p.prof_snapshot(),
        }
    }
}

/// One worker's run loop: the two-barrier conservative window protocol.
///
/// Every shared write happens in phase A (before barrier 1) or in the
/// execute phase (between the barriers); every decision input is read
/// between barrier 1 and the execute phase, from values that can no longer
/// change — so all workers compute the identical decision every iteration.
#[allow(clippy::too_many_arguments)]
fn shard_worker<M: Send + 'static>(
    me: usize,
    k: usize,
    state: &mut ShardState<M>,
    mins: &[AtomicU64],
    events: &[AtomicU64],
    halted: &AtomicBool,
    barrier: &Barrier,
    mail: &[Mailbox<M>],
    deadline_ns: u64,
    max_events: u64,
    latency: &LatencyMatrix,
    relay: &[u64],
    obs: bool,
) {
    let ShardState {
        engine,
        link,
        raw,
        prof,
    } = state;
    let mut delivered_total: u64 = 0;
    // Earliest-activation scratch for the window computation, allocated
    // once per run (never inside the window loop — the counting-allocator
    // gate watches).
    let mut eat: Vec<u64> = vec![0; k];
    loop {
        // Phase A: integrate inbound batches, publish queue minimum /
        // event count / halt flag. Popping the pair's `full` ring is the
        // only synchronization a drain needs; the emptied vector goes
        // straight back on `free` for the sender to reuse.
        if let Some(p) = prof.as_deref_mut() {
            p.window_open();
        }
        let mut received: u64 = 0;
        for from in 0..k {
            if from == me {
                continue;
            }
            let mb = &mail[from * k + me];
            while let Some(mut batch) = mb.full.pop() {
                received += batch.len() as u64;
                engine.queue.push_batch(batch.drain(..));
                let _ = mb.free.push(batch);
            }
        }
        if let Some(p) = prof.as_deref_mut() {
            p.drain_end(received);
        }
        if engine.halted {
            halted.store(true, Ordering::Relaxed);
        }
        mins[me].store(
            engine.queue.peek_time().map_or(u64::MAX, |t| t.as_ns()),
            Ordering::Relaxed,
        );
        events[me].store(delivered_total, Ordering::Relaxed);
        if let Some(p) = prof.as_deref_mut() {
            p.idle_begin();
        }
        barrier.wait();
        if let Some(p) = prof.as_deref_mut() {
            p.idle_end();
        }
        // Decide: identical on every worker. Priority order matches the
        // sequential engine: halt, idle, deadline, budget.
        if halted.load(Ordering::Relaxed) {
            if let Some(p) = prof.as_deref_mut() {
                p.commit_window();
            }
            break;
        }
        let h = mins
            .iter()
            .map(|m| m.load(Ordering::Relaxed))
            .min()
            .expect("at least one shard");
        if h == u64::MAX || h > deadline_ns {
            if let Some(p) = prof.as_deref_mut() {
                p.commit_window();
            }
            break;
        }
        let total: u64 = events.iter().map(|e| e.load(Ordering::Relaxed)).sum();
        if total >= max_events {
            if let Some(p) = prof.as_deref_mut() {
                p.commit_window();
            }
            break;
        }
        // Adaptive per-destination windows: every worker recomputes the
        // full vector from the same frozen published minima, so the
        // window bound — and the deposit-time soundness check — agree
        // byte-for-byte across shards. A shard's published minimum alone
        // does not bound its future sends: a shard with an empty (or
        // late) queue can be *woken* by a message from a busier shard and
        // reply long before anything currently in its own queue. The
        // earliest-activation time
        //
        //   EAT(i) = min over m of ( next_m + dist(m, i) )
        //
        // with `dist` the shortest-path closure of the latency matrix
        // (zero diagonal, so EAT(i) <= next_i), lower-bounds the
        // execution time of *any* event shard `i` can run from this
        // window on — wake-up relay chains of arbitrary depth included —
        // and the granted windows are W(j) = min over i != j of
        // ( EAT(i) + L(i, j) ). EAT is monotone across windows (every
        // event a shard integrates or keeps is at or past its previous
        // window end, itself at least its previous EAT), so granted
        // windows never move backwards and each shard's delivery stream
        // stays key-sorted for the final merge. With one shard the min
        // over an empty set stays `MAX` and the deadline cap makes the
        // whole run a single window.
        for (i, e) in eat.iter_mut().enumerate() {
            *e = mins
                .iter()
                .enumerate()
                .map(|(m, v)| v.load(Ordering::Relaxed).saturating_add(relay[m * k + i]))
                .min()
                .expect("at least one shard");
        }
        for (j, w) in link.window_ends.iter_mut().enumerate() {
            *w = u64::MAX;
            for (i, e) in eat.iter().enumerate() {
                if i != j {
                    *w = (*w).min(e.saturating_add(latency.get(i, j)));
                }
            }
            *w = (*w).min(deadline_ns.saturating_add(1));
        }
        let window_end = link.window_ends[me];
        if let Some(p) = prof.as_deref_mut() {
            p.busy_begin(h, window_end, engine.queue_depth() as u64);
        }
        // With one shard the budget can be exact; with several it is
        // enforced at window granularity by the check above.
        let window_budget = if k == 1 { max_events - total } else { u64::MAX };
        let delivered = engine.run_window(
            window_end,
            window_budget,
            link,
            if obs { Some(raw) } else { None },
        );
        delivered_total += delivered;
        if let Some(p) = prof.as_deref_mut() {
            let advance = engine.now.as_ns().saturating_sub(h);
            p.busy_end(delivered, advance);
            p.drain_begin();
        }
        // Deposit outboxes: move the full vector into the pair's SPSC
        // ring (one `Release` store) and take a recycled empty vector
        // back as the next outbox — no steady-state allocation. The ring
        // cannot be full: the receiver drained it before barrier 1.
        for (to, outbox) in link.outboxes.iter_mut().enumerate() {
            if to == me || outbox.is_empty() {
                continue;
            }
            if let Some(p) = prof.as_deref_mut() {
                p.deposit(to, outbox.len() as u64);
            }
            let mb = &mail[me * k + to];
            let replacement = mb.free.pop().unwrap_or_default();
            let batch = std::mem::replace(outbox, replacement);
            if mb.full.push(batch).is_err() {
                unreachable!("cross-shard mailbox overflow: receiver failed to drain");
            }
        }
        if let Some(p) = prof.as_deref_mut() {
            p.drain_end(0);
            p.idle_begin();
        }
        barrier.wait();
        if let Some(p) = prof.as_deref_mut() {
            p.idle_end();
            p.commit_window();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causal::CausalKind;
    use crate::counters::CounterSnapshot;
    use crate::engine::Component;
    use crate::partition::ShardMap;

    const HOP_NS: u64 = 500;

    #[derive(Clone, Copy)]
    enum PMsg {
        Token { hops: u32, cause: CauseId },
    }

    /// Ring node: logs arrival, emits a span + packet record, forwards the
    /// token with a jittered (RNG-drawn) delay of at least one hop.
    struct Node {
        idx: usize,
        next: ComponentId,
        log: Vec<(u64, u32)>,
    }

    impl Component<PMsg> for Node {
        fn handle(&mut self, msg: PMsg, ctx: &mut crate::Ctx<'_, PMsg>) {
            let PMsg::Token { hops, cause } = msg;
            self.log.push((ctx.now().as_ns(), hops));
            ctx.count("ring.hops", 1);
            ctx.trace("hop", hops as u64, self.idx as u64);
            let wire = ctx.packet(
                PacketLog::new(cause, CausalKind::Wire)
                    .nodes(self.idx as u32, self.next.0 as u32)
                    .detail(hops as u64, 0),
            );
            if hops > 0 {
                let jitter = ctx.rng().below(100);
                ctx.send(
                    SimTime::from_ns(HOP_NS + jitter),
                    self.next,
                    PMsg::Token {
                        hops: hops - 1,
                        cause: wire,
                    },
                );
            }
        }
    }

    fn build_ring(n: usize, tokens: usize) -> Engine<PMsg> {
        let mut engine: Engine<PMsg> = Engine::new(0xBA77E5);
        let ids: Vec<ComponentId> = (0..n).map(|_| engine.reserve_id()).collect();
        for (i, &id) in ids.iter().enumerate() {
            engine.install(
                id,
                Node {
                    idx: i,
                    next: ids[(i + 1) % n],
                    log: Vec::new(),
                },
            );
        }
        for t in 0..tokens {
            engine.schedule_at(
                SimTime::from_ns(t as u64 * 3),
                ids[t % n],
                PMsg::Token {
                    hops: 40,
                    cause: CauseId::NONE,
                },
            );
        }
        engine
    }

    struct Observed {
        now: SimTime,
        events: u64,
        counters: CounterSnapshot,
        logs: Vec<Vec<(u64, u32)>>,
        trace: Vec<crate::TraceRecord>,
        pkts: Vec<crate::PacketRecord>,
        outcome: RunOutcome,
    }

    fn run_seq(n: usize, tokens: usize, deadline: SimTime) -> Observed {
        let mut e = build_ring(n, tokens);
        e.enable_trace();
        e.enable_netdump();
        let outcome = e.run_until(deadline);
        Observed {
            now: e.now(),
            events: e.events_processed(),
            counters: e.counters().snapshot(),
            logs: (0..n)
                .map(|i| e.component_ref::<Node>(ComponentId(i)).unwrap().log.clone())
                .collect(),
            trace: e.trace().iter().copied().collect(),
            pkts: e.netdump().records().to_vec(),
            outcome,
        }
    }

    fn run_par(n: usize, tokens: usize, deadline: SimTime, shards: usize) -> Observed {
        let engine = build_ring(n, tokens);
        let map = ShardMap::by_node(n, n, shards, |c| c);
        let mut p = ParallelEngine::new(engine, map, SimTime::from_ns(HOP_NS));
        p.enable_trace();
        p.enable_netdump();
        let outcome = p.run_until(deadline);
        Observed {
            now: p.now(),
            events: p.events_processed(),
            counters: p.counters().snapshot(),
            logs: (0..n)
                .map(|i| p.component_ref::<Node>(ComponentId(i)).unwrap().log.clone())
                .collect(),
            trace: p.trace().iter().copied().collect(),
            pkts: p.netdump().records().to_vec(),
            outcome,
        }
    }

    fn assert_same(a: &Observed, b: &Observed, what: &str) {
        assert_eq!(a.outcome, b.outcome, "{what}: outcome");
        assert_eq!(a.now, b.now, "{what}: final time");
        assert_eq!(a.events, b.events, "{what}: events processed");
        assert_eq!(a.counters, b.counters, "{what}: counters");
        assert_eq!(a.logs, b.logs, "{what}: per-node logs");
        assert_eq!(a.trace, b.trace, "{what}: trace records");
        assert_eq!(a.pkts, b.pkts, "{what}: netdump records");
    }

    #[test]
    fn parallel_ring_matches_sequential_at_every_shard_count() {
        let seq = run_seq(12, 12, SimTime::MAX);
        assert_eq!(seq.outcome, RunOutcome::Idle);
        assert!(seq.events > 0);
        for shards in [1usize, 2, 3, 5, 12] {
            let par = run_par(12, 12, SimTime::MAX, shards);
            assert_same(&seq, &par, &format!("{shards} shards"));
        }
    }

    #[test]
    fn deadline_outcome_and_event_set_match() {
        let deadline = SimTime::from_ns(HOP_NS * 10 + 37);
        let seq = run_seq(8, 8, deadline);
        assert_eq!(seq.outcome, RunOutcome::DeadlineReached);
        for shards in [2usize, 4] {
            let par = run_par(8, 8, deadline, shards);
            assert_same(&seq, &par, &format!("deadline, {shards} shards"));
        }
    }

    #[test]
    fn netdump_parent_chains_survive_the_merge() {
        let seq = run_seq(6, 3, SimTime::MAX);
        let par = run_par(6, 3, SimTime::MAX, 3);
        // Walk a causal chain from the last record in both dumps: identical
        // ids all the way up proves the provisional-id remap is exact.
        let last = seq.pkts.last().unwrap().id;
        let chain_s: Vec<CauseId> = crate::chain_to(&seq.pkts, last)
            .iter()
            .map(|r| r.id)
            .collect();
        let chain_p: Vec<CauseId> = crate::chain_to(&par.pkts, last)
            .iter()
            .map(|r| r.id)
            .collect();
        assert!(chain_s.len() > 5, "chain unexpectedly short");
        assert_eq!(chain_s, chain_p);
        // No provisional id may leak into the merged dump.
        for r in &par.pkts {
            assert!(!is_provisional(r.id));
            assert!(!is_provisional(r.parent));
        }
    }

    #[test]
    fn resumed_runs_keep_merging_consistently() {
        // Split one run into several run_until calls: cross-call provisional
        // parent remaps and count/clock continuity must all hold.
        let n = 8;
        let full = run_seq(n, 4, SimTime::MAX);
        let engine = build_ring(n, 4);
        let map = ShardMap::by_node(n, n, 4, |c| c);
        let mut p = ParallelEngine::new(engine, map, SimTime::from_ns(HOP_NS));
        p.enable_trace();
        p.enable_netdump();
        let mut outcome = RunOutcome::Idle;
        for slice in 1..=100u64 {
            outcome = p.run_until(SimTime::from_ns(slice * 1_000));
            if outcome == RunOutcome::Idle {
                break;
            }
        }
        assert_eq!(outcome, RunOutcome::Idle);
        assert_eq!(p.now(), full.now);
        assert_eq!(p.events_processed(), full.events);
        let pkts: Vec<crate::PacketRecord> = p.netdump().records().to_vec();
        assert_eq!(pkts, full.pkts);
        let trace: Vec<crate::TraceRecord> = p.trace().iter().copied().collect();
        assert_eq!(trace, full.trace);
    }

    #[test]
    fn external_schedule_between_runs_matches_sequential() {
        let drive = |par_shards: Option<usize>| -> (SimTime, u64, CounterSnapshot) {
            let engine = build_ring(6, 2);
            match par_shards {
                None => {
                    let mut e = engine;
                    e.run_until(SimTime::from_us(2.0));
                    e.schedule_at(
                        e.now() + SimTime::from_ns(50),
                        ComponentId(3),
                        PMsg::Token {
                            hops: 9,
                            cause: CauseId::NONE,
                        },
                    );
                    e.run_until(SimTime::MAX);
                    (e.now(), e.events_processed(), e.counters().snapshot())
                }
                Some(k) => {
                    let map = ShardMap::by_node(6, 6, k, |c| c);
                    let mut p = ParallelEngine::new(engine, map, SimTime::from_ns(HOP_NS));
                    p.run_until(SimTime::from_us(2.0));
                    p.schedule_at(
                        p.now() + SimTime::from_ns(50),
                        ComponentId(3),
                        PMsg::Token {
                            hops: 9,
                            cause: CauseId::NONE,
                        },
                    );
                    p.run_until(SimTime::MAX);
                    (p.now(), p.events_processed(), p.counters().snapshot())
                }
            }
        };
        let seq = drive(None);
        assert_eq!(seq, drive(Some(2)));
        assert_eq!(seq, drive(Some(3)));
    }

    /// Per-pair bounds tighter than the global minimum must still
    /// reproduce the sequential run exactly — adaptive windows only change
    /// how often shards synchronize, never what they deliver.
    #[test]
    fn non_uniform_latency_matrix_preserves_parity() {
        let n = 12;
        let seq = run_seq(n, 12, SimTime::MAX);
        for shards in [2usize, 3, 4] {
            let engine = build_ring(n, 12);
            let map = ShardMap::by_node(n, n, shards, |c| c);
            let k = map.shards();
            // Ring traffic only crosses from shard s to shard s+1 (mod k);
            // every other pair carries no messages, so a huge bound is
            // vacuously sound and lets those pairs run far ahead. The
            // deposit debug_assert checks the claim on every send.
            let lat = LatencyMatrix::from_fn(k, |i, j| {
                if j == (i + 1) % k {
                    SimTime::from_ns(HOP_NS)
                } else {
                    SimTime::from_ns(1_000_000)
                }
            });
            let mut p = ParallelEngine::with_latency(engine, map, lat);
            p.enable_trace();
            p.enable_netdump();
            let outcome = p.run_until(SimTime::MAX);
            let par = Observed {
                now: p.now(),
                events: p.events_processed(),
                counters: p.counters().snapshot(),
                logs: (0..n)
                    .map(|i| p.component_ref::<Node>(ComponentId(i)).unwrap().log.clone())
                    .collect(),
                trace: p.trace().iter().copied().collect(),
                pkts: p.netdump().records().to_vec(),
                outcome,
            };
            assert_same(&seq, &par, &format!("non-uniform matrix, {shards} shards"));
        }
    }

    /// The self-profiler must not perturb the run (byte-identity holds with
    /// it armed) and its capture must account for the workers' wall time.
    #[test]
    fn profiled_run_is_identical_and_accounts_for_wall_time() {
        let seq = run_seq(12, 12, SimTime::MAX);
        let n = 12;
        let engine = build_ring(n, 12);
        let map = ShardMap::by_node(n, n, 3, |c| c);
        let mut p = ParallelEngine::new(engine, map, SimTime::from_ns(HOP_NS));
        p.enable_trace();
        p.enable_netdump();
        assert!(p.prof_snapshot().is_none(), "profiler off by default");
        p.enable_prof();
        let outcome = p.run_until(SimTime::MAX);
        let par = Observed {
            now: p.now(),
            events: p.events_processed(),
            counters: p.counters().snapshot(),
            logs: (0..n)
                .map(|i| p.component_ref::<Node>(ComponentId(i)).unwrap().log.clone())
                .collect(),
            trace: p.trace().iter().copied().collect(),
            pkts: p.netdump().records().to_vec(),
            outcome,
        };
        assert_same(&seq, &par, "profiled 3-shard run");

        let prof = p.prof_snapshot().expect("profiler armed");
        assert_eq!(prof.shards, 3);
        assert_eq!(prof.lookahead_ns, HOP_NS);
        assert_eq!(
            prof.total_events(),
            p.events_processed(),
            "profiler event count disagrees with the engine"
        );
        // The two-barrier protocol runs every shard through the same
        // window sequence.
        let wins: Vec<u64> = prof.data.iter().map(|d| d.window_count).collect();
        assert!(wins.iter().all(|&w| w == wins[0]), "{wins:?}");
        assert!(wins[0] > 1, "multi-window run expected");
        // Partition sizes ride along (12 components over 3 shards).
        assert_eq!(
            prof.data.iter().map(|d| d.components).sum::<usize>(),
            n,
            "shard component sizes must cover the engine"
        );
        // Wall-time accounting: the hooks bracket drain/idle/busy, so the
        // tracked phases must cover (almost) all measured worker wall time.
        assert!(
            prof.accounted_fraction() > 0.90,
            "only {:.1}% of worker wall time accounted",
            prof.accounted_fraction() * 100.0
        );
        let att = prof.attribution();
        assert_eq!(att.idle_ns, att.imbalance_ns + att.stall_ns);
        let (dominant, share) = att.dominant();
        assert!(share > 0.0 && share <= 1.0, "{dominant}: share {share}");
    }
}
