//! Named statistics counters, interned for hot-path speed.
//!
//! The protocol claims in the paper are partly *count* claims — e.g. the
//! NIC-based collective protocol "reduces the number of total packets by
//! half" because ACKs are replaced by receiver-driven NACKs. Components bump
//! named counters through [`crate::Ctx::count`] / [`crate::Ctx::count_id`];
//! tests snapshot/diff them to verify those claims per barrier iteration.
//!
//! ## Interning
//!
//! Counter names are `&'static str`, interned once per process into dense
//! [`CounterId`] slots. A [`Counters`] set is then just a `Vec<u64>`, so the
//! per-event hot path is a single indexed add — no string hashing, no tree
//! walk. The [`crate::counter_id!`] macro caches the id in a per-call-site
//! atomic, making repeated bumps of the same counter branch-predictable:
//!
//! ```
//! use nicbar_sim::{counter_id, Counters};
//!
//! let mut c = Counters::new();
//! c.add_id(counter_id!("pkt.sent"), 1); // interns once, then atomic load
//! assert_eq!(c.get("pkt.sent"), 1);
//! ```
//!
//! Ids are process-global (two engines running in parallel share the name
//! table but not the values), and all *reporting* APIs — [`Counters::iter`],
//! [`CounterSnapshot`] — stay name-ordered exactly as before the interning
//! change, so packet-count claim tests are unaffected. Counters whose value
//! is zero are not reported, matching the old map-based behaviour where a
//! never-bumped key was absent.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Dense index of an interned counter name. Obtain one with [`intern`] or
/// the [`crate::counter_id!`] macro.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CounterId(u32);

impl CounterId {
    /// The dense slot index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The interned name.
    pub fn name(self) -> &'static str {
        registry().lock().expect("counter registry poisoned").names[self.index()]
    }
}

/// Process-wide name table: dense id → name, plus the reverse lookup.
struct Registry {
    names: Vec<&'static str>,
    lookup: BTreeMap<&'static str, CounterId>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            names: Vec::new(),
            lookup: BTreeMap::new(),
        })
    })
}

/// Intern `name`, returning its process-wide dense id (idempotent).
pub fn intern(name: &'static str) -> CounterId {
    let mut reg = registry().lock().expect("counter registry poisoned");
    if let Some(&id) = reg.lookup.get(name) {
        return id;
    }
    let id = CounterId(u32::try_from(reg.names.len()).expect("counter name table overflow"));
    reg.names.push(name);
    reg.lookup.insert(name, id);
    id
}

/// Look up `name` without interning it (None if never interned).
fn lookup(name: &str) -> Option<CounterId> {
    registry()
        .lock()
        .expect("counter registry poisoned")
        .lookup
        .get(name)
        .copied()
}

/// Intern a counter name with a per-call-site cache: the first execution
/// takes the registry lock, every later one is a relaxed atomic load. Use
/// this for counters bumped on hot paths.
#[macro_export]
macro_rules! counter_id {
    ($name:expr) => {{
        use ::std::sync::atomic::{AtomicU32, Ordering};
        static CACHE: AtomicU32 = AtomicU32::new(u32::MAX);
        let cached = CACHE.load(Ordering::Relaxed);
        if cached != u32::MAX {
            $crate::counters::CounterId::from_raw(cached)
        } else {
            let id = $crate::counters::intern($name);
            CACHE.store(id.index() as u32, Ordering::Relaxed);
            id
        }
    }};
}

impl CounterId {
    /// Rebuild an id from its raw index. Only meant for the
    /// [`crate::counter_id!`] macro's cache; feeding an index that was never
    /// returned by [`intern`] will panic on first name resolution.
    #[doc(hidden)]
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        CounterId(raw)
    }
}

/// A set of named monotonically increasing `u64` counters.
///
/// Values live in dense slots indexed by [`CounterId`]; the hot-path
/// [`Counters::add_id`] is a bounds-checked vector add.
#[derive(Default, Clone)]
pub struct Counters {
    slots: Vec<u64>,
}

/// An immutable snapshot of a [`Counters`] set, used to compute deltas over a
/// region of simulated time (e.g. one barrier iteration). Keyed by name, in
/// name order; zero-valued counters are absent.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    map: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Create an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `amount` to the counter with interned id `id`. This is the hot
    /// path: one branch (slot-table growth) and one indexed add.
    #[inline]
    pub fn add_id(&mut self, id: CounterId, amount: u64) {
        let idx = id.index();
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, 0);
        }
        self.slots[idx] += amount;
    }

    /// Add `amount` to counter `key`, interning it first (cold-path
    /// convenience; hot call sites should use [`crate::counter_id!`] +
    /// [`Counters::add_id`]).
    #[inline]
    pub fn add(&mut self, key: &'static str, amount: u64) {
        self.add_id(intern(key), amount);
    }

    /// Increment counter `key` by one.
    #[inline]
    pub fn bump(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Current value of `key` (zero if never bumped).
    pub fn get(&self, key: &str) -> u64 {
        lookup(key)
            .and_then(|id| self.slots.get(id.index()).copied())
            .unwrap_or(0)
    }

    /// Current value for an interned id (zero if never bumped here).
    #[inline]
    pub fn get_id(&self, id: CounterId) -> u64 {
        self.slots.get(id.index()).copied().unwrap_or(0)
    }

    /// Iterate over `(name, value)` pairs of non-zero counters in name
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.collect_named().into_iter()
    }

    /// Name-ordered `(name, value)` pairs of the non-zero counters.
    fn collect_named(&self) -> Vec<(&'static str, u64)> {
        let reg = registry().lock().expect("counter registry poisoned");
        // The lookup map iterates in name order; slots beyond our table or
        // never bumped read as zero and are skipped.
        reg.lookup
            .iter()
            .filter_map(|(&name, &id)| {
                let v = self.slots.get(id.index()).copied().unwrap_or(0);
                (v > 0).then_some((name, v))
            })
            .collect()
    }

    /// Freeze the current values.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            map: self.collect_named().into_iter().collect(),
        }
    }

    /// Difference `self - earlier` per key. Keys absent from `earlier` count
    /// from zero. Panics in debug builds if any counter ran backwards (they
    /// are monotone by construction).
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut out = BTreeMap::new();
        for (k, v) in self.collect_named() {
            let before = earlier.map.get(k).copied().unwrap_or(0);
            debug_assert!(v >= before, "counter {k} ran backwards");
            let delta = v.saturating_sub(before);
            if delta > 0 {
                out.insert(k, delta);
            }
        }
        CounterSnapshot { map: out }
    }

    /// Reset every counter to zero.
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    /// Move every count into `target` (element-wise add) and zero `self`.
    /// Used by the parallel engine to fold per-shard counters into the
    /// merged set after each run; ids are process-global, so slot indices
    /// agree across instances.
    pub fn drain_into(&mut self, target: &mut Counters) {
        if target.slots.len() < self.slots.len() {
            target.slots.resize(self.slots.len(), 0);
        }
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            target.slots[idx] += *slot;
            *slot = 0;
        }
    }
}

impl CounterSnapshot {
    /// Value of `key` in this snapshot (zero if absent).
    pub fn get(&self, key: &str) -> u64 {
        self.map.get(key).copied().unwrap_or(0)
    }

    /// Iterate over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.map.iter().map(|(k, v)| (*k, *v))
    }

    /// True if no counter moved.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl fmt::Debug for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.collect_named()).finish()
    }
}

impl fmt::Display for CounterSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{k:<32} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get() {
        let mut c = Counters::new();
        assert_eq!(c.get("pkt"), 0);
        c.bump("pkt");
        c.add("pkt", 4);
        assert_eq!(c.get("pkt"), 5);
    }

    #[test]
    fn interned_ids_are_stable_and_fast_path_matches() {
        let a = intern("stable.counter");
        let b = intern("stable.counter");
        assert_eq!(a, b);
        assert_eq!(a.name(), "stable.counter");
        let mut c = Counters::new();
        c.add_id(a, 3);
        c.add("stable.counter", 2);
        assert_eq!(c.get("stable.counter"), 5);
        assert_eq!(c.get_id(a), 5);
    }

    #[test]
    fn counter_id_macro_caches() {
        let mut c = Counters::new();
        for _ in 0..10 {
            c.add_id(counter_id!("macro.cached"), 1);
        }
        assert_eq!(c.get("macro.cached"), 10);
        assert_eq!(counter_id!("macro.cached"), intern("macro.cached"));
    }

    #[test]
    fn snapshot_diff() {
        let mut c = Counters::new();
        c.add("pkt", 10);
        c.add("ack", 3);
        let snap = c.snapshot();
        c.add("pkt", 7);
        c.add("nack", 1);
        let d = c.since(&snap);
        assert_eq!(d.get("pkt"), 7);
        assert_eq!(d.get("ack"), 0);
        assert_eq!(d.get("nack"), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn diff_of_identical_snapshots_is_empty() {
        let mut c = Counters::new();
        c.add("x", 2);
        let s = c.snapshot();
        assert!(c.since(&s).is_empty());
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut c = Counters::new();
        c.bump("zeta");
        c.bump("alpha");
        c.bump("mid");
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn zero_valued_counters_are_not_reported() {
        // Other tests intern names freely into the shared process-wide
        // table; a fresh Counters instance must still report nothing.
        intern("ghost.counter");
        let mut c = Counters::new();
        c.add("ghost.counter", 0);
        assert!(c.iter().next().is_none());
        assert!(c.snapshot().is_empty());
    }

    #[test]
    fn instances_do_not_share_values() {
        let id = intern("shared.name");
        let mut a = Counters::new();
        let mut b = Counters::new();
        a.add_id(id, 5);
        b.add_id(id, 7);
        assert_eq!(a.get_id(id), 5);
        assert_eq!(b.get_id(id), 7);
    }

    #[test]
    fn drain_into_folds_and_zeroes() {
        let mut shard = Counters::new();
        let mut base = Counters::new();
        shard.add("drain.a", 5);
        shard.add("drain.b", 2);
        base.add("drain.a", 1);
        shard.drain_into(&mut base);
        assert_eq!(base.get("drain.a"), 6);
        assert_eq!(base.get("drain.b"), 2);
        assert_eq!(shard.get("drain.a"), 0);
        assert!(shard.snapshot().is_empty());
        // Draining again is a no-op.
        shard.drain_into(&mut base);
        assert_eq!(base.get("drain.a"), 6);
    }

    #[test]
    fn clear_resets() {
        let mut c = Counters::new();
        c.bump("a");
        c.clear();
        assert_eq!(c.get("a"), 0);
    }
}
