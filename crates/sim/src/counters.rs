//! Named statistics counters.
//!
//! The protocol claims in the paper are partly *count* claims — e.g. the
//! NIC-based collective protocol "reduces the number of total packets by
//! half" because ACKs are replaced by receiver-driven NACKs. Components bump
//! named counters through [`crate::Ctx::count`]; tests snapshot/diff them to
//! verify those claims per barrier iteration.

use std::collections::BTreeMap;
use std::fmt;

/// A set of named monotonically increasing `u64` counters.
///
/// Keys are `&'static str` so call sites stay allocation-free; a `BTreeMap`
/// keeps reports deterministically ordered.
#[derive(Default, Clone)]
pub struct Counters {
    map: BTreeMap<&'static str, u64>,
}

/// An immutable snapshot of a [`Counters`] set, used to compute deltas over a
/// region of simulated time (e.g. one barrier iteration).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    map: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Create an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `amount` to counter `key` (creating it at zero first if needed).
    #[inline]
    pub fn add(&mut self, key: &'static str, amount: u64) {
        *self.map.entry(key).or_insert(0) += amount;
    }

    /// Increment counter `key` by one.
    #[inline]
    pub fn bump(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Current value of `key` (zero if never bumped).
    pub fn get(&self, key: &str) -> u64 {
        self.map.get(key).copied().unwrap_or(0)
    }

    /// Iterate over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.map.iter().map(|(k, v)| (*k, *v))
    }

    /// Freeze the current values.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            map: self.map.clone(),
        }
    }

    /// Difference `self - earlier` per key. Keys absent from `earlier` count
    /// from zero. Panics in debug builds if any counter ran backwards (they
    /// are monotone by construction).
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut out = BTreeMap::new();
        for (k, v) in &self.map {
            let before = earlier.map.get(k).copied().unwrap_or(0);
            debug_assert!(*v >= before, "counter {k} ran backwards");
            let delta = v.saturating_sub(before);
            if delta > 0 {
                out.insert(*k, delta);
            }
        }
        CounterSnapshot { map: out }
    }

    /// Remove every counter.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

impl CounterSnapshot {
    /// Value of `key` in this snapshot (zero if absent).
    pub fn get(&self, key: &str) -> u64 {
        self.map.get(key).copied().unwrap_or(0)
    }

    /// Iterate over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.map.iter().map(|(k, v)| (*k, *v))
    }

    /// True if no counter moved.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl fmt::Debug for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.map.iter()).finish()
    }
}

impl fmt::Display for CounterSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{k:<32} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get() {
        let mut c = Counters::new();
        assert_eq!(c.get("pkt"), 0);
        c.bump("pkt");
        c.add("pkt", 4);
        assert_eq!(c.get("pkt"), 5);
    }

    #[test]
    fn snapshot_diff() {
        let mut c = Counters::new();
        c.add("pkt", 10);
        c.add("ack", 3);
        let snap = c.snapshot();
        c.add("pkt", 7);
        c.add("nack", 1);
        let d = c.since(&snap);
        assert_eq!(d.get("pkt"), 7);
        assert_eq!(d.get("ack"), 0);
        assert_eq!(d.get("nack"), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn diff_of_identical_snapshots_is_empty() {
        let mut c = Counters::new();
        c.add("x", 2);
        let s = c.snapshot();
        assert!(c.since(&s).is_empty());
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut c = Counters::new();
        c.bump("zeta");
        c.bump("alpha");
        c.bump("mid");
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn clear_resets() {
        let mut c = Counters::new();
        c.bump("a");
        c.clear();
        assert_eq!(c.get("a"), 0);
    }
}
