//! The discrete-event scheduler.
//!
//! An [`Engine`] owns a set of [`Component`]s and a priority queue of typed
//! events. Each simulator in the workspace (GM/Myrinet, Elan/Quadrics)
//! instantiates `Engine<M>` with its own message enum `M`, so event payloads
//! are statically typed — no `Any` downcasts on the hot path.
//!
//! ## Determinism
//!
//! Events are ordered by `(time, seq)` where `seq` is a global insertion
//! counter. Ties in simulated time therefore resolve in scheduling order,
//! which — combined with the seeded [`SimRng`] — makes runs bit-for-bit
//! reproducible. The integration test suite relies on this to compare whole
//! counter sets across reruns.

use crate::counters::Counters;
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::trace::{Trace, TraceRecord};
use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Index of a component within an [`Engine`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ComponentId(pub usize);

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Object-safe `Any` access for components, so tests and harnesses can reach
/// into a concrete component after a run (`Engine::component_mut`).
pub trait AsAny {
    /// Upcast to `&dyn Any`.
    fn as_any(&self) -> &dyn Any;
    /// Upcast to `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: 'static> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// An actor in the simulation. Components receive events through
/// [`Component::handle`] and react by scheduling further events via the
/// [`Ctx`]; they must not share mutable state by any other means.
pub trait Component<M>: AsAny {
    /// Process one event addressed to this component.
    fn handle(&mut self, msg: M, ctx: &mut Ctx<'_, M>);
}

struct Entry<M> {
    time: SimTime,
    seq: u64,
    target: ComponentId,
    msg: M,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Entry<M> {}
impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Handle given to a component while it processes an event.
pub struct Ctx<'a, M> {
    now: SimTime,
    self_id: ComponentId,
    pending: &'a mut Vec<(SimTime, ComponentId, M)>,
    rng: &'a mut SimRng,
    trace: &'a mut Trace,
    counters: &'a mut Counters,
    halt: &'a mut bool,
}

impl<'a, M> Ctx<'a, M> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Id of the component currently handling the event.
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Schedule `msg` for `target` after `delay` (possibly zero; zero-delay
    /// events are still delivered after the current handler returns, in
    /// scheduling order).
    #[inline]
    pub fn send(&mut self, delay: SimTime, target: ComponentId, msg: M) {
        self.pending.push((self.now + delay, target, msg));
    }

    /// Schedule `msg` for an absolute time `at` (must not be in the past).
    #[inline]
    pub fn send_at(&mut self, at: SimTime, target: ComponentId, msg: M) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.pending.push((at.max(self.now), target, msg));
    }

    /// Schedule `msg` for this component after `delay`.
    #[inline]
    pub fn send_self(&mut self, delay: SimTime, msg: M) {
        self.send(delay, self.self_id, msg);
    }

    /// Simulation-wide RNG.
    #[inline]
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Bump a named counter.
    #[inline]
    pub fn count(&mut self, key: &'static str, amount: u64) {
        self.counters.add(key, amount);
    }

    /// Read a named counter (rarely needed by components; used by
    /// self-monitoring harness components).
    #[inline]
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key)
    }

    /// Emit a trace record attributed to this component.
    #[inline]
    pub fn trace(&mut self, label: &'static str, a: u64, b: u64) {
        self.trace.emit(TraceRecord {
            time: self.now,
            component: self.self_id,
            label,
            a,
            b,
        });
    }

    /// Stop the engine after the current handler returns. Pending events are
    /// retained (the engine can be resumed with another `run*` call).
    #[inline]
    pub fn halt(&mut self) {
        *self.halt = true;
    }
}

/// Outcome of a bounded run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Idle,
    /// A component called [`Ctx::halt`].
    Halted,
    /// The deadline passed with events still pending.
    DeadlineReached,
    /// The event-count budget was exhausted with events still pending.
    BudgetExhausted,
}

/// A deterministic discrete-event simulation engine over message type `M`.
pub struct Engine<M: 'static> {
    components: Vec<Option<Box<dyn Component<M>>>>,
    queue: BinaryHeap<Entry<M>>,
    pending: Vec<(SimTime, ComponentId, M)>,
    seq: u64,
    now: SimTime,
    rng: SimRng,
    trace: Trace,
    counters: Counters,
    halted: bool,
    events_processed: u64,
}

impl<M: 'static> Engine<M> {
    /// Create an engine whose RNG is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Engine {
            components: Vec::new(),
            queue: BinaryHeap::new(),
            pending: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
            rng: SimRng::new(seed),
            trace: Trace::disabled(),
            counters: Counters::new(),
            halted: false,
            events_processed: 0,
        }
    }

    /// Reserve a component slot, returning its id. Useful when components
    /// need each other's ids at construction time; fill the slot later with
    /// [`Engine::install`].
    pub fn reserve_id(&mut self) -> ComponentId {
        let id = ComponentId(self.components.len());
        self.components.push(None);
        id
    }

    /// Install a component into a reserved slot.
    ///
    /// # Panics
    /// Panics if the slot is already occupied.
    pub fn install<C: Component<M> + 'static>(&mut self, id: ComponentId, component: C) {
        assert!(
            self.components[id.0].is_none(),
            "component slot {id} already occupied"
        );
        self.components[id.0] = Some(Box::new(component));
    }

    /// Add a component, returning its id (reserve + install in one step).
    pub fn add<C: Component<M> + 'static>(&mut self, component: C) -> ComponentId {
        let id = self.reserve_id();
        self.install(id, component);
        id
    }

    /// Number of component slots (installed or reserved).
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True if no components exist.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Inject an event from outside the simulation at absolute time `at`
    /// (must be `>= now`).
    pub fn schedule_at(&mut self, at: SimTime, target: ComponentId, msg: M) {
        assert!(at >= self.now, "scheduling into the past");
        self.push(at, target, msg);
    }

    /// Inject an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, target: ComponentId, msg: M) {
        self.push(self.now + delay, target, msg);
    }

    fn push(&mut self, time: SimTime, target: ComponentId, msg: M) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry {
            time,
            seq,
            target,
            msg,
        });
    }

    /// Current simulated time (the timestamp of the last delivered event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The engine-wide counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Mutable access to counters (harness use: clearing between phases).
    pub fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    /// The trace ring.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Enable tracing with the default capacity.
    pub fn enable_trace(&mut self) {
        self.trace.enable();
    }

    /// Mutable access to the trace (clearing between phases).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The engine RNG (harness use: drawing workload randomness from the
    /// same master seed).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Downcast access to a concrete component, for post-run inspection.
    pub fn component_ref<T: 'static>(&self, id: ComponentId) -> Option<&T> {
        // `as_deref` yields `&dyn Component<M>` so `as_any` dispatches through
        // the vtable to the concrete type (calling it on the `Box` directly
        // would match the blanket impl for the box itself).
        self.components[id.0]
            .as_deref()
            .and_then(|c| c.as_any().downcast_ref::<T>())
    }

    /// Downcast mutable access to a concrete component.
    pub fn component_mut<T: 'static>(&mut self, id: ComponentId) -> Option<&mut T> {
        self.components[id.0]
            .as_deref_mut()
            .and_then(|c| c.as_any_mut().downcast_mut::<T>())
    }

    /// Deliver the single earliest event. Returns `false` if the queue was
    /// empty.
    ///
    /// # Panics
    /// Panics if the event targets an empty component slot.
    pub fn step(&mut self) -> bool {
        let Some(entry) = self.queue.pop() else {
            return false;
        };
        debug_assert!(entry.time >= self.now, "event queue went backwards");
        self.now = entry.time;
        self.events_processed += 1;
        let mut component = self.components[entry.target.0]
            .take()
            .unwrap_or_else(|| panic!("event for uninstalled component {}", entry.target));
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: entry.target,
                pending: &mut self.pending,
                rng: &mut self.rng,
                trace: &mut self.trace,
                counters: &mut self.counters,
                halt: &mut self.halted,
            };
            component.handle(entry.msg, &mut ctx);
        }
        self.components[entry.target.0] = Some(component);
        // Drain handler-scheduled events into the heap in FIFO order so that
        // same-time events keep the order the handler issued them in. Done
        // outside the Ctx borrow; the buffer's allocation is recycled.
        let mut pending = std::mem::take(&mut self.pending);
        for (time, target, msg) in pending.drain(..) {
            self.push(time, target, msg);
        }
        self.pending = pending;
        true
    }

    /// Run until the queue drains or a component halts. Returns the final
    /// simulated time.
    pub fn run(&mut self) -> SimTime {
        self.run_bounded(SimTime::MAX, u64::MAX);
        self.now
    }

    /// Run until `deadline` (inclusive), the queue drains, or a component
    /// halts.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.run_bounded(deadline, u64::MAX)
    }

    /// Run with both a time deadline and an event-count budget — the budget
    /// guards tests against accidental event storms (a protocol bug that
    /// retransmits forever should fail fast, not hang).
    pub fn run_bounded(&mut self, deadline: SimTime, max_events: u64) -> RunOutcome {
        self.halted = false;
        let mut budget = max_events;
        loop {
            if self.halted {
                return RunOutcome::Halted;
            }
            let Some(next) = self.queue.peek() else {
                return RunOutcome::Idle;
            };
            if next.time > deadline {
                return RunOutcome::DeadlineReached;
            }
            if budget == 0 {
                return RunOutcome::BudgetExhausted;
            }
            budget -= 1;
            self.step();
        }
    }

    /// Earliest pending event time, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    enum Msg {
        Tick(u32),
        Record(u32),
        Stop,
    }

    /// Sends `Record(i)` to a sink every microsecond, `n` times, then stops
    /// the engine.
    struct Ticker {
        sink: ComponentId,
        remaining: u32,
    }

    impl Component<Msg> for Ticker {
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
            match msg {
                Msg::Tick(i) => {
                    ctx.send(SimTime::ZERO, self.sink, Msg::Record(i));
                    if self.remaining > 0 {
                        self.remaining -= 1;
                        ctx.send_self(SimTime::MICROSECOND, Msg::Tick(i + 1));
                    } else {
                        ctx.send(SimTime::ZERO, self.sink, Msg::Stop);
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    struct Sink {
        seen: Vec<(SimTime, u32)>,
    }

    impl Component<Msg> for Sink {
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
            match msg {
                Msg::Record(i) => {
                    ctx.count("records", 1);
                    ctx.trace("record", i as u64, 0);
                    self.seen.push((ctx.now(), i));
                }
                Msg::Stop => ctx.halt(),
                _ => unreachable!(),
            }
        }
    }

    fn build(n: u32) -> (Engine<Msg>, ComponentId, ComponentId) {
        let mut engine: Engine<Msg> = Engine::new(0);
        let ticker_id = engine.reserve_id();
        let sink_id = engine.reserve_id();
        engine.install(
            ticker_id,
            Ticker {
                sink: sink_id,
                remaining: n,
            },
        );
        engine.install(sink_id, Sink { seen: Vec::new() });
        engine.schedule_at(SimTime::ZERO, ticker_id, Msg::Tick(0));
        (engine, ticker_id, sink_id)
    }

    #[test]
    fn events_delivered_in_time_order() {
        let (mut engine, _, sink) = build(4);
        assert_eq!(engine.run_until(SimTime::MAX), RunOutcome::Halted);
        let sink = engine.component_ref::<Sink>(sink).unwrap();
        let times: Vec<u64> = sink.seen.iter().map(|(t, _)| t.as_ns()).collect();
        assert_eq!(times, vec![0, 1_000, 2_000, 3_000, 4_000]);
        let ids: Vec<u32> = sink.seen.iter().map(|(_, i)| *i).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ties_resolve_in_scheduling_order() {
        struct Collector {
            order: Vec<u32>,
        }
        impl Component<Msg> for Collector {
            fn handle(&mut self, msg: Msg, _ctx: &mut Ctx<'_, Msg>) {
                if let Msg::Record(i) = msg {
                    self.order.push(i);
                }
            }
        }
        let mut engine: Engine<Msg> = Engine::new(0);
        let c = engine.add(Collector { order: Vec::new() });
        // All at t=5us, scheduled 3,1,2 — must deliver 3,1,2.
        for i in [3u32, 1, 2] {
            engine.schedule_at(SimTime::from_us(5.0), c, Msg::Record(i));
        }
        engine.run();
        assert_eq!(
            engine.component_ref::<Collector>(c).unwrap().order,
            vec![3, 1, 2]
        );
    }

    #[test]
    fn handler_scheduled_ties_keep_issue_order() {
        struct Burst {
            sink: ComponentId,
        }
        impl Component<Msg> for Burst {
            fn handle(&mut self, _msg: Msg, ctx: &mut Ctx<'_, Msg>) {
                for i in 0..5 {
                    ctx.send(SimTime::from_us(1.0), self.sink, Msg::Record(i));
                }
            }
        }
        let mut engine: Engine<Msg> = Engine::new(0);
        let sink_id = engine.reserve_id();
        let burst_id = engine.reserve_id();
        engine.install(sink_id, Sink { seen: Vec::new() });
        engine.install(burst_id, Burst { sink: sink_id });
        engine.schedule_at(SimTime::ZERO, burst_id, Msg::Tick(0));
        engine.run();
        let ids: Vec<u32> = engine
            .component_ref::<Sink>(sink_id)
            .unwrap()
            .seen
            .iter()
            .map(|(_, i)| *i)
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn run_until_deadline_stops_early() {
        let (mut engine, _, _) = build(100);
        let outcome = engine.run_until(SimTime::from_us(10.5));
        assert_eq!(outcome, RunOutcome::DeadlineReached);
        assert_eq!(engine.now(), SimTime::from_us(10.0));
        assert!(engine.pending_events() > 0);
        // Resume to completion.
        assert_eq!(engine.run_until(SimTime::MAX), RunOutcome::Halted);
    }

    #[test]
    fn budget_exhaustion_reports() {
        let (mut engine, _, _) = build(1000);
        let outcome = engine.run_bounded(SimTime::MAX, 10);
        assert_eq!(outcome, RunOutcome::BudgetExhausted);
        assert_eq!(engine.events_processed(), 10);
    }

    #[test]
    fn queue_drain_reports_idle() {
        let mut engine: Engine<Msg> = Engine::new(0);
        let sink = engine.add(Sink { seen: Vec::new() });
        engine.schedule_at(SimTime::from_us(1.0), sink, Msg::Record(7));
        assert_eq!(engine.run_until(SimTime::MAX), RunOutcome::Idle);
        assert_eq!(engine.now(), SimTime::from_us(1.0));
    }

    #[test]
    fn counters_and_trace_capture_activity() {
        let (mut engine, _, _) = build(9);
        engine.enable_trace();
        engine.run();
        assert_eq!(engine.counters().get("records"), 10);
        assert_eq!(engine.trace().count("record"), 10);
    }

    #[test]
    fn component_downcast() {
        let (mut engine, ticker, sink) = build(1);
        engine.run();
        assert!(engine.component_ref::<Sink>(sink).is_some());
        assert!(engine.component_ref::<Ticker>(sink).is_none());
        assert!(engine.component_mut::<Ticker>(ticker).is_some());
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_install_panics() {
        let mut engine: Engine<Msg> = Engine::new(0);
        let id = engine.add(Sink { seen: Vec::new() });
        engine.install(id, Sink { seen: Vec::new() });
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let (mut engine, ticker, _) = build(3);
        engine.run();
        engine.schedule_at(SimTime::ZERO, ticker, Msg::Tick(0));
    }

    #[test]
    fn determinism_across_reruns() {
        let run = || {
            let (mut engine, _, sink) = build(50);
            engine.run();
            let sink = engine.component_ref::<Sink>(sink).unwrap();
            (engine.now(), engine.events_processed(), sink.seen.clone())
        };
        assert_eq!(run(), run());
    }
}
