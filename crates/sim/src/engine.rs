//! The discrete-event scheduler.
//!
//! An [`Engine`] owns a set of [`Component`]s and a priority queue of typed
//! events. Each simulator in the workspace (GM/Myrinet, Elan/Quadrics)
//! instantiates `Engine<M>` with its own message enum `M`, so event payloads
//! are statically typed — no `Any` downcasts on the hot path.
//!
//! ## Determinism: content-based event keys
//!
//! Events are ordered by a 128-bit key: simulated time in the high 64 bits
//! and a *content subkey* in the low 64. The subkey is `(source << 40) |
//! count`, where `source` identifies who scheduled the event (0 for
//! external [`Engine::schedule_at`] injections, `component id + 1` for
//! handler sends) and `count` is that source's cumulative send counter. The
//! key is therefore a pure function of the simulation's own causal history
//! — *not* of global insertion order — so the same event carries the same
//! key whether the engine runs alone or as one shard of the parallel
//! engine ([`crate::parallel`]), and ties in simulated time resolve
//! identically everywhere: per source, sends deliver in issue order (FIFO);
//! across sources, by source id. Combined with per-component RNG streams
//! (forked once from the master seed, independent of draw order elsewhere)
//! this makes runs bit-for-bit reproducible across reruns, schedulers, and
//! shard counts. The integration test suite relies on this to compare whole
//! counter sets across engines.
//!
//! ## Hot path
//!
//! [`Engine::step`] pops from a timing wheel (see [`crate::queue`]),
//! resolves the target component with a split borrow — no `Option::take` /
//! reinstall round-trip — and hands the handler a [`Ctx`] that keys and
//! pushes follow-up events *directly* into the queue. The original
//! `BinaryHeap` scheduler is still available via [`Engine::with_scheduler`]
//! as a differential-testing baseline.

use crate::causal::{CauseId, NetDump, PacketLog};
use crate::counters::Counters;
use crate::ledger::{Ledger, LedgerRecord, Occ};
use crate::parallel::{RawEvent, RawObs, ShardLink};
use crate::queue::{pack, EventQueue, PoppedEvent, SchedulerKind};
use crate::rng::SimRng;
use crate::span::{FlightRecorder, SpanEvent};
use crate::time::SimTime;
use crate::trace::{Trace, TraceRecord};
use std::any::Any;
use std::fmt;

/// Bits of the event subkey holding the per-source send count; the
/// remaining high bits hold the source id (component id + 1, or 0 for
/// external injections).
pub(crate) const SUB_BITS: u32 = 40;
/// Mask of the count field.
pub(crate) const COUNT_MASK: u64 = (1 << SUB_BITS) - 1;

/// Per-component event-source state: the cumulative send count (the count
/// half of every subkey this component generates) and its private RNG
/// stream, forked lazily from the engine's master seed.
#[derive(Default)]
pub(crate) struct SourceState {
    pub(crate) count: u64,
    pub(crate) rng: Option<Box<SimRng>>,
}

/// Index of a component within an [`Engine`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ComponentId(pub usize);

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Object-safe `Any` access for components, so tests and harnesses can reach
/// into a concrete component after a run (`Engine::component_mut`).
pub trait AsAny {
    /// Upcast to `&dyn Any`.
    fn as_any(&self) -> &dyn Any;
    /// Upcast to `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: 'static> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// An actor in the simulation. Components receive events through
/// [`Component::handle`] and react by scheduling further events via the
/// [`Ctx`]; they must not share mutable state by any other means.
///
/// `Send` is required so a component can be owned by a worker thread of the
/// parallel engine; components never run concurrently with themselves and
/// need no internal synchronization.
pub trait Component<M>: AsAny + Send {
    /// Process one event addressed to this component.
    fn handle(&mut self, msg: M, ctx: &mut Ctx<'_, M>);
}

/// Handle given to a component while it processes an event.
///
/// Sends are keyed `(time, source, per-source count)` at push time and go
/// straight into the engine's event queue, so a handler's same-time sends
/// are delivered in exactly the order it issued them.
pub struct Ctx<'a, M> {
    now: SimTime,
    self_id: ComponentId,
    /// Precomputed `(self_id + 1) << SUB_BITS` — the source half of every
    /// subkey this handler generates.
    sub_hi: u64,
    /// This component's cumulative send count (the count half).
    count: &'a mut u64,
    queue: &'a mut EventQueue<M>,
    /// This component's private RNG stream, forked lazily from `master`.
    rng_slot: &'a mut Option<Box<SimRng>>,
    master: &'a SimRng,
    trace: &'a mut Trace,
    recorder: &'a mut FlightRecorder,
    netdump: &'a mut NetDump,
    ledger: &'a mut Ledger,
    counters: &'a mut Counters,
    halt: &'a mut bool,
    /// Present when this engine runs as a shard of the parallel engine:
    /// routes cross-shard sends into per-destination outboxes.
    link: Option<&'a mut ShardLink<M>>,
    /// Present when a shard must capture observability locally for the
    /// deterministic post-run merge (see [`crate::parallel`]).
    raw: Option<&'a mut RawObs>,
    /// True when span events have any live consumer (trace ring, flight
    /// recorder, or raw shard capture), computed once per delivery so every
    /// [`Ctx::span`] call on the disabled path is a single predictable
    /// branch on an already-loaded bool.
    observing: bool,
    /// Same, for [`Ctx::packet`] (netdump or raw shard capture).
    dumping: bool,
    /// Same, for [`Ctx::ledger`] (occupancy ledger or raw shard capture).
    ledgering: bool,
}

impl<M> Ctx<'_, M> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Id of the component currently handling the event.
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Key and enqueue one event: locally, or — when running as a shard and
    /// the target lives elsewhere — into the cross-shard outbox.
    #[inline]
    fn dispatch(&mut self, at: SimTime, target: ComponentId, msg: M) {
        debug_assert!(*self.count < COUNT_MASK, "per-source send count overflow");
        let key = pack(at, self.sub_hi | *self.count);
        *self.count += 1;
        match self.link.as_deref_mut() {
            Some(link) if !link.is_local(target) => link.deposit(key, at, target, msg),
            _ => self.queue.push(key, target, msg),
        }
    }

    /// Schedule `msg` for `target` after `delay` (possibly zero; zero-delay
    /// events are still delivered after the current handler returns, in
    /// scheduling order).
    #[inline]
    pub fn send(&mut self, delay: SimTime, target: ComponentId, msg: M) {
        self.dispatch(self.now + delay, target, msg);
    }

    /// Schedule `msg` for an absolute time `at`.
    ///
    /// A past `at` is **always clamped to the current time** — identically in
    /// debug and release builds, so optimized and unoptimized runs deliver
    /// the same event order. Each clamp increments the `sim.clamped_sends`
    /// counter; a simulation that is supposed to never look backwards can
    /// assert that counter stays zero.
    #[inline]
    pub fn send_at(&mut self, at: SimTime, target: ComponentId, msg: M) {
        let at = if at < self.now {
            self.counters
                .add_id(crate::counter_id!("sim.clamped_sends"), 1);
            self.now
        } else {
            at
        };
        self.dispatch(at, target, msg);
    }

    /// Schedule `msg` for this component after `delay`.
    #[inline]
    pub fn send_self(&mut self, delay: SimTime, msg: M) {
        self.send(delay, self.self_id, msg);
    }

    /// Schedule a whole burst of `(delay, target, msg)` events in one queue
    /// pass (see [`crate::queue`]); cheaper than repeated [`Ctx::send`] for
    /// large fan-outs. Delivery order among same-time events is iteration
    /// order, exactly as if each had been sent individually.
    pub fn send_batch(&mut self, batch: impl IntoIterator<Item = (SimTime, ComponentId, M)>) {
        let now = self.now;
        if self.link.is_some() {
            // Sharded: each event may route to a different outbox; the keys
            // are content-based, so per-item dispatch delivers identically.
            for (delay, target, msg) in batch {
                self.dispatch(now + delay, target, msg);
            }
            return;
        }
        let sub_hi = self.sub_hi;
        let Ctx { queue, count, .. } = self;
        queue.push_batch(batch.into_iter().map(|(delay, target, msg)| {
            let key = pack(now + delay, sub_hi | **count);
            **count += 1;
            (key, target, msg)
        }));
    }

    /// This component's private RNG stream.
    ///
    /// Forked from the engine's master seed on first use, keyed by component
    /// id — so a component's draw sequence depends only on its own history,
    /// not on how many draws *other* components made. That independence is
    /// what keeps randomized runs bit-identical between the sequential
    /// engine and any sharding of the parallel one.
    #[inline]
    pub fn rng(&mut self) -> &mut SimRng {
        let master = self.master;
        let id = self.self_id.0 as u64;
        self.rng_slot
            .get_or_insert_with(|| Box::new(master.fork(id + 1)))
    }

    /// Bump a named counter (interns the name; hot call sites should prefer
    /// [`Ctx::count_id`] with a [`crate::counter_id!`]-cached id).
    #[inline]
    pub fn count(&mut self, key: &'static str, amount: u64) {
        self.counters.add(key, amount);
    }

    /// Bump a counter by interned id — the hot path: one indexed add, no
    /// string hashing.
    #[inline]
    pub fn count_id(&mut self, id: crate::counters::CounterId, amount: u64) {
        self.counters.add_id(id, amount);
    }

    /// Read a named counter (rarely needed by components; used by
    /// self-monitoring harness components).
    #[inline]
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key)
    }

    /// Emit a free-form trace record attributed to this component
    /// (sugar for [`Ctx::span`] with a [`SpanEvent::Raw`] payload).
    #[inline]
    pub fn trace(&mut self, label: &'static str, a: u64, b: u64) {
        self.span(SpanEvent::Raw { label, a, b });
    }

    /// Emit a typed event attributed to this component: recorded into the
    /// trace ring (if tracing is enabled) and folded into the flight
    /// recorder (if recording is enabled). When both are disabled — the
    /// common case — this is a single predictable branch and the event is
    /// never built into a record.
    #[inline]
    pub fn span(&mut self, event: SpanEvent) {
        if !self.observing {
            return;
        }
        self.span_slow(event);
    }

    #[cold]
    fn span_slow(&mut self, event: SpanEvent) {
        // A shard captures raw span events for the deterministic post-run
        // merge; only the merged replay feeds the real trace/recorder.
        if let Some(raw) = self.raw.as_deref_mut() {
            raw.spans.push((self.now, self.self_id, event));
            return;
        }
        self.trace.emit(TraceRecord {
            time: self.now,
            component: self.self_id,
            event,
        });
        self.recorder.observe(self.now, &event);
    }

    /// Record a wire-visible event into the causal netdump, returning its
    /// [`CauseId`] so follow-on events can name it as their parent. When the
    /// netdump is disabled — the common case — this is a single predictable
    /// branch and returns [`CauseId::NONE`].
    #[inline]
    pub fn packet(&mut self, log: PacketLog) -> CauseId {
        if !self.dumping {
            return CauseId::NONE;
        }
        self.packet_slow(log)
    }

    #[cold]
    fn packet_slow(&mut self, log: PacketLog) -> CauseId {
        // Shards hand out provisional ids; the merge remaps them to the
        // real, sequential-identical netdump ids.
        if let Some(raw) = self.raw.as_deref_mut() {
            return raw.record_packet(self.now, self.self_id, log);
        }
        self.netdump.record(self.now, self.self_id, log)
    }

    /// Record a resource-occupancy event into the ledger. When the ledger
    /// is disabled — the common case — this is a single predictable branch
    /// and the record is never built.
    #[inline]
    pub fn ledger(&mut self, occ: Occ) {
        if !self.ledgering {
            return;
        }
        self.ledger_slow(occ);
    }

    #[cold]
    fn ledger_slow(&mut self, occ: Occ) {
        let record = LedgerRecord {
            t0: occ.t0,
            t1: occ.t1,
            component: self.self_id,
            op: occ.op,
            res: occ.res,
            node: occ.node,
            unit: occ.unit,
            owner: occ.owner,
        };
        // Ledger records carry no ids, so a shard's capture replays into the
        // merged ledger verbatim — no remapping.
        if let Some(raw) = self.raw.as_deref_mut() {
            raw.ledger.push(record);
            return;
        }
        self.ledger.record(record);
    }

    /// Stop the engine after the current handler returns. Pending events are
    /// retained (the engine can be resumed with another `run*` call).
    #[inline]
    pub fn halt(&mut self) {
        *self.halt = true;
    }
}

/// Outcome of a bounded run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Idle,
    /// A component called [`Ctx::halt`].
    Halted,
    /// The deadline passed with events still pending.
    DeadlineReached,
    /// The event-count budget was exhausted with events still pending.
    BudgetExhausted,
}

/// A deterministic discrete-event simulation engine over message type `M`.
///
/// Fields are `pub(crate)` so the parallel engine (`crate::parallel`) can
/// split one built engine into per-shard engines and merge results back;
/// everything outside this crate goes through the accessor methods.
pub struct Engine<M: 'static> {
    pub(crate) components: Vec<Option<Box<dyn Component<M>>>>,
    pub(crate) queue: EventQueue<M>,
    pub(crate) now: SimTime,
    /// Master RNG: never drawn from directly, only forked per component.
    pub(crate) rng: SimRng,
    /// Per-component source state (send count + private RNG stream), one
    /// record per component so a delivery's lookup is a single indexed
    /// access on one cache line.
    pub(crate) srcs: Vec<SourceState>,
    /// Send count of the external source (`schedule_*` injections).
    pub(crate) ext_count: u64,
    pub(crate) trace: Trace,
    pub(crate) recorder: FlightRecorder,
    pub(crate) netdump: NetDump,
    pub(crate) ledger: Ledger,
    pub(crate) counters: Counters,
    pub(crate) halted: bool,
    pub(crate) events_processed: u64,
}

impl<M: 'static> Engine<M> {
    /// Create an engine whose RNG is seeded with `seed`, on the default
    /// (timing wheel) scheduler.
    pub fn new(seed: u64) -> Self {
        Self::with_scheduler(seed, SchedulerKind::default())
    }

    /// Create an engine on a specific scheduler implementation. All kinds
    /// deliver events in identical key order; the classic `BinaryHeap`
    /// variant exists as the baseline for differential tests and throughput
    /// comparisons.
    pub fn with_scheduler(seed: u64, kind: SchedulerKind) -> Self {
        Engine {
            components: Vec::new(),
            queue: EventQueue::new(kind),
            now: SimTime::ZERO,
            rng: SimRng::new(seed),
            srcs: Vec::new(),
            ext_count: 0,
            trace: Trace::disabled(),
            recorder: FlightRecorder::disabled(),
            netdump: NetDump::disabled(),
            ledger: Ledger::disabled(),
            counters: Counters::new(),
            halted: false,
            events_processed: 0,
        }
    }

    /// Which scheduler implementation this engine runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.queue.kind()
    }

    /// Reserve a component slot, returning its id. Useful when components
    /// need each other's ids at construction time; fill the slot later with
    /// [`Engine::install`].
    pub fn reserve_id(&mut self) -> ComponentId {
        let id = ComponentId(self.components.len());
        debug_assert!(
            (self.components.len() as u64) + 1 < (1 << (64 - SUB_BITS)),
            "component count exceeds the event-key source field"
        );
        self.components.push(None);
        self.srcs.push(SourceState::default());
        id
    }

    /// Install a component into a reserved slot.
    ///
    /// # Panics
    /// Panics if the slot is already occupied.
    pub fn install<C: Component<M> + 'static>(&mut self, id: ComponentId, component: C) {
        assert!(
            self.components[id.0].is_none(),
            "component slot {id} already occupied"
        );
        self.components[id.0] = Some(Box::new(component));
    }

    /// Add a component, returning its id (reserve + install in one step).
    pub fn add<C: Component<M> + 'static>(&mut self, component: C) -> ComponentId {
        let id = self.reserve_id();
        self.install(id, component);
        id
    }

    /// Number of component slots (installed or reserved).
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True if no components exist.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Inject an event from outside the simulation at absolute time `at`
    /// (must be `>= now`). External injections are key source 0: at equal
    /// times they deliver before any handler-scheduled event, in injection
    /// order.
    pub fn schedule_at(&mut self, at: SimTime, target: ComponentId, msg: M) {
        assert!(at >= self.now, "scheduling into the past");
        debug_assert!(self.ext_count < COUNT_MASK, "external send count overflow");
        let key = pack(at, self.ext_count);
        self.ext_count += 1;
        self.queue.push(key, target, msg);
    }

    /// Inject an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, target: ComponentId, msg: M) {
        self.schedule_at(self.now + delay, target, msg);
    }

    /// Inject a batch of `(at, target, msg)` events in one queue pass —
    /// cheaper than repeated [`Engine::schedule_at`] for large workload
    /// set-ups. Same-time events are delivered in iteration order.
    ///
    /// # Panics
    /// Panics if any event time is before `now`.
    pub fn schedule_batch(&mut self, batch: impl IntoIterator<Item = (SimTime, ComponentId, M)>) {
        let now = self.now;
        let Engine {
            queue, ext_count, ..
        } = self;
        queue.push_batch(batch.into_iter().map(|(at, target, msg)| {
            assert!(at >= now, "scheduling into the past");
            let key = pack(at, *ext_count);
            *ext_count += 1;
            (key, target, msg)
        }));
    }

    /// Current simulated time (the timestamp of the last delivered event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The engine-wide counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Mutable access to counters (harness use: clearing between phases).
    pub fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    /// The trace ring.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Enable tracing with the default capacity.
    pub fn enable_trace(&mut self) {
        self.trace.enable();
    }

    /// Mutable access to the trace (clearing between phases).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Enable flight recording with the default span capacity.
    pub fn enable_recorder(&mut self) {
        self.recorder.enable();
    }

    /// Mutable access to the flight recorder (setting participants,
    /// clearing between phases).
    pub fn recorder_mut(&mut self) -> &mut FlightRecorder {
        &mut self.recorder
    }

    /// The causal netdump.
    pub fn netdump(&self) -> &NetDump {
        &self.netdump
    }

    /// Enable causal packet capture with the default record capacity.
    pub fn enable_netdump(&mut self) {
        self.netdump.enable();
    }

    /// Mutable access to the netdump (clearing between phases, draining
    /// records after a run).
    pub fn netdump_mut(&mut self) -> &mut NetDump {
        &mut self.netdump
    }

    /// The resource-occupancy ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Enable occupancy capture with the default record capacity.
    pub fn enable_ledger(&mut self) {
        self.ledger.enable();
    }

    /// Mutable access to the ledger (clearing between phases, draining
    /// records after a run).
    pub fn ledger_mut(&mut self) -> &mut Ledger {
        &mut self.ledger
    }

    /// Downcast access to a concrete component, for post-run inspection.
    pub fn component_ref<T: 'static>(&self, id: ComponentId) -> Option<&T> {
        // `as_deref` yields `&dyn Component<M>` so `as_any` dispatches through
        // the vtable to the concrete type (calling it on the `Box` directly
        // would match the blanket impl for the box itself).
        self.components[id.0]
            .as_deref()
            .and_then(|c| c.as_any().downcast_ref::<T>())
    }

    /// Downcast mutable access to a concrete component.
    pub fn component_mut<T: 'static>(&mut self, id: ComponentId) -> Option<&mut T> {
        self.components[id.0]
            .as_deref_mut()
            .and_then(|c| c.as_any_mut().downcast_mut::<T>())
    }

    /// Deliver the single earliest event. Returns `false` if the queue was
    /// empty.
    ///
    /// # Panics
    /// Panics if the event targets an empty component slot.
    pub fn step(&mut self) -> bool {
        let Some(event) = self.queue.pop() else {
            return false;
        };
        self.deliver(event, None, None);
        true
    }

    /// Deliver one already-popped event to its component.
    ///
    /// `link` is present when this engine runs as a shard of the parallel
    /// engine (cross-shard sends go to outboxes); `raw` is present when the
    /// shard must additionally capture observability for the deterministic
    /// post-run merge.
    #[inline]
    pub(crate) fn deliver(
        &mut self,
        event: PoppedEvent<M>,
        link: Option<&mut ShardLink<M>>,
        mut raw: Option<&mut RawObs>,
    ) {
        debug_assert!(
            event.time >= self.now,
            "event queue went backwards: event at {} for {:?} behind clock {}",
            event.time,
            event.target,
            self.now
        );
        self.now = event.time;
        self.events_processed += 1;
        let (record_spans, record_pkts, record_ledger, s0, p0, l0) = match raw.as_deref() {
            Some(r) => (
                r.record_spans,
                r.record_pkts,
                r.record_ledger,
                r.spans.len(),
                r.pkts.len(),
                r.ledger.len(),
            ),
            None => (false, false, false, 0, 0, 0),
        };
        // Split borrow: the target component and the Ctx fields are disjoint
        // parts of `self`, so the handler runs without moving the component
        // out of its slot and back.
        let Engine {
            components,
            queue,
            now,
            rng,
            srcs,
            trace,
            recorder,
            netdump,
            ledger,
            counters,
            halted,
            ..
        } = self;
        let component = components[event.target.0]
            .as_deref_mut()
            .unwrap_or_else(|| panic!("event for uninstalled component {}", event.target));
        let observing = trace.is_enabled() || recorder.is_enabled() || record_spans;
        let dumping = netdump.is_enabled() || record_pkts;
        let ledgering = ledger.is_enabled() || record_ledger;
        let src = &mut srcs[event.target.0];
        let mut ctx = Ctx {
            now: *now,
            self_id: event.target,
            sub_hi: (event.target.0 as u64 + 1) << SUB_BITS,
            count: &mut src.count,
            queue,
            rng_slot: &mut src.rng,
            master: rng,
            trace,
            recorder,
            netdump,
            ledger,
            counters,
            halt: halted,
            link,
            raw: raw.as_deref_mut(),
            observing,
            dumping,
            ledgering,
        };
        component.handle(event.msg, &mut ctx);
        if let Some(r) = raw {
            // The merge needs an entry for *every* delivered event — even
            // record-less ones — because the cross-shard merge order is
            // decided by delivered-event keys, not by record keys.
            r.events.push(RawEvent {
                key: event.key,
                spans: (r.spans.len() - s0) as u32,
                pkts: (r.pkts.len() - p0) as u32,
                lgr: (r.ledger.len() - l0) as u32,
            });
        }
    }

    /// Run until the queue drains or a component halts. Returns the final
    /// simulated time.
    ///
    /// This is the hot loop: with no deadline and no budget to check it
    /// pops and delivers directly, one queue access per event (unlike
    /// [`Engine::run_bounded`], which must peek before committing to a pop).
    pub fn run(&mut self) -> SimTime {
        self.halted = false;
        while !self.halted {
            let Some(event) = self.queue.pop() else { break };
            self.deliver(event, None, None);
        }
        self.now
    }

    /// Run until `deadline` (inclusive), the queue drains, or a component
    /// halts.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.run_bounded(deadline, u64::MAX)
    }

    /// Run with both a time deadline and an event-count budget — the budget
    /// guards tests against accidental event storms (a protocol bug that
    /// retransmits forever should fail fast, not hang).
    pub fn run_bounded(&mut self, deadline: SimTime, max_events: u64) -> RunOutcome {
        self.halted = false;
        let mut budget = max_events;
        loop {
            if self.halted {
                return RunOutcome::Halted;
            }
            let Some(next) = self.queue.peek_time() else {
                return RunOutcome::Idle;
            };
            if next > deadline {
                return RunOutcome::DeadlineReached;
            }
            if budget == 0 {
                return RunOutcome::BudgetExhausted;
            }
            budget -= 1;
            self.step();
        }
    }

    /// Deliver every pending event with `time < end_ns` — one conservative
    /// window of a sharded run, capped at `max` deliveries (the parallel
    /// engine passes an exact budget in the single-shard case, `u64::MAX`
    /// otherwise). Cross-shard sends go to `link`'s outboxes; observability
    /// (when enabled) is captured into `raw` for the deterministic post-run
    /// merge. Returns the number of events delivered. Stops early if a
    /// component halts (`self.halted` is *not* reset here — the parallel
    /// engine owns halt propagation).
    pub(crate) fn run_window(
        &mut self,
        end_ns: u64,
        max: u64,
        link: &mut ShardLink<M>,
        mut raw: Option<&mut RawObs>,
    ) -> u64 {
        debug_assert_eq!(
            link.window_ends[link.my_shard()],
            end_ns,
            "worker must pre-set the per-destination window vector"
        );
        let mut delivered = 0;
        while !self.halted && delivered < max {
            let Some(next) = self.queue.peek_time() else {
                break;
            };
            if next.as_ns() >= end_ns {
                break;
            }
            let event = self.queue.pop().expect("peeked event vanished");
            self.deliver(event, Some(link), raw.as_deref_mut());
            delivered += 1;
        }
        delivered
    }

    /// Earliest pending event time, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Queue depth for the shard self-profiler's high-water tracking —
    /// same value as [`Engine::pending_events`], named for intent at the
    /// profiling call site.
    pub(crate) fn queue_depth(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    enum Msg {
        Tick(u32),
        Record(u32),
        Stop,
    }

    /// Sends `Record(i)` to a sink every microsecond, `n` times, then stops
    /// the engine.
    struct Ticker {
        sink: ComponentId,
        remaining: u32,
    }

    impl Component<Msg> for Ticker {
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
            match msg {
                Msg::Tick(i) => {
                    ctx.send(SimTime::ZERO, self.sink, Msg::Record(i));
                    if self.remaining > 0 {
                        self.remaining -= 1;
                        ctx.send_self(SimTime::MICROSECOND, Msg::Tick(i + 1));
                    } else {
                        ctx.send(SimTime::ZERO, self.sink, Msg::Stop);
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    struct Sink {
        seen: Vec<(SimTime, u32)>,
    }

    impl Component<Msg> for Sink {
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
            match msg {
                Msg::Record(i) => {
                    ctx.count("records", 1);
                    ctx.trace("record", i as u64, 0);
                    self.seen.push((ctx.now(), i));
                }
                Msg::Stop => ctx.halt(),
                _ => unreachable!(),
            }
        }
    }

    fn build(n: u32) -> (Engine<Msg>, ComponentId, ComponentId) {
        build_on(n, SchedulerKind::default())
    }

    fn build_on(n: u32, kind: SchedulerKind) -> (Engine<Msg>, ComponentId, ComponentId) {
        let mut engine: Engine<Msg> = Engine::with_scheduler(0, kind);
        let ticker_id = engine.reserve_id();
        let sink_id = engine.reserve_id();
        engine.install(
            ticker_id,
            Ticker {
                sink: sink_id,
                remaining: n,
            },
        );
        engine.install(sink_id, Sink { seen: Vec::new() });
        engine.schedule_at(SimTime::ZERO, ticker_id, Msg::Tick(0));
        (engine, ticker_id, sink_id)
    }

    #[test]
    fn events_delivered_in_time_order() {
        let (mut engine, _, sink) = build(4);
        assert_eq!(engine.run_until(SimTime::MAX), RunOutcome::Halted);
        let sink = engine.component_ref::<Sink>(sink).unwrap();
        let times: Vec<u64> = sink.seen.iter().map(|(t, _)| t.as_ns()).collect();
        assert_eq!(times, vec![0, 1_000, 2_000, 3_000, 4_000]);
        let ids: Vec<u32> = sink.seen.iter().map(|(_, i)| *i).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ties_resolve_in_scheduling_order() {
        struct Collector {
            order: Vec<u32>,
        }
        impl Component<Msg> for Collector {
            fn handle(&mut self, msg: Msg, _ctx: &mut Ctx<'_, Msg>) {
                if let Msg::Record(i) = msg {
                    self.order.push(i);
                }
            }
        }
        let mut engine: Engine<Msg> = Engine::new(0);
        let c = engine.add(Collector { order: Vec::new() });
        // All at t=5us, scheduled 3,1,2 — must deliver 3,1,2.
        for i in [3u32, 1, 2] {
            engine.schedule_at(SimTime::from_us(5.0), c, Msg::Record(i));
        }
        engine.run();
        assert_eq!(
            engine.component_ref::<Collector>(c).unwrap().order,
            vec![3, 1, 2]
        );
    }

    #[test]
    fn handler_scheduled_ties_keep_issue_order() {
        struct Burst {
            sink: ComponentId,
        }
        impl Component<Msg> for Burst {
            fn handle(&mut self, _msg: Msg, ctx: &mut Ctx<'_, Msg>) {
                for i in 0..5 {
                    ctx.send(SimTime::from_us(1.0), self.sink, Msg::Record(i));
                }
            }
        }
        let mut engine: Engine<Msg> = Engine::new(0);
        let sink_id = engine.reserve_id();
        let burst_id = engine.reserve_id();
        engine.install(sink_id, Sink { seen: Vec::new() });
        engine.install(burst_id, Burst { sink: sink_id });
        engine.schedule_at(SimTime::ZERO, burst_id, Msg::Tick(0));
        engine.run();
        let ids: Vec<u32> = engine
            .component_ref::<Sink>(sink_id)
            .unwrap()
            .seen
            .iter()
            .map(|(_, i)| *i)
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn batched_sends_keep_issue_order() {
        struct BatchBurst {
            sink: ComponentId,
        }
        impl Component<Msg> for BatchBurst {
            fn handle(&mut self, _msg: Msg, ctx: &mut Ctx<'_, Msg>) {
                let sink = self.sink;
                ctx.send_batch((0..5).map(|i| (SimTime::from_us(1.0), sink, Msg::Record(i))));
            }
        }
        let mut engine: Engine<Msg> = Engine::new(0);
        let sink_id = engine.reserve_id();
        let burst_id = engine.reserve_id();
        engine.install(sink_id, Sink { seen: Vec::new() });
        engine.install(burst_id, BatchBurst { sink: sink_id });
        engine.schedule_at(SimTime::ZERO, burst_id, Msg::Tick(0));
        engine.run();
        let ids: Vec<u32> = engine
            .component_ref::<Sink>(sink_id)
            .unwrap()
            .seen
            .iter()
            .map(|(_, i)| *i)
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn schedule_batch_matches_individual_schedules() {
        let run = |batched: bool| {
            let mut engine: Engine<Msg> = Engine::new(0);
            let sink = engine.add(Sink { seen: Vec::new() });
            let events =
                (0..64u32).map(|i| (SimTime::from_ns((i % 7) as u64), sink, Msg::Record(i)));
            if batched {
                engine.schedule_batch(events);
            } else {
                for (at, target, msg) in events {
                    engine.schedule_at(at, target, msg);
                }
            }
            engine.run();
            engine.component_ref::<Sink>(sink).unwrap().seen.clone()
        };
        assert_eq!(run(true), run(false));
    }

    /// Same-time sends from different components interleave by component id
    /// (the key's source field), regardless of issue order — the property
    /// the parallel merge depends on.
    #[test]
    fn cross_component_ties_order_by_source_id() {
        struct At {
            sink: ComponentId,
            tag: u32,
        }
        impl Component<Msg> for At {
            fn handle(&mut self, _msg: Msg, ctx: &mut Ctx<'_, Msg>) {
                // Absolute target time, so both components aim at the same
                // instant even though their handlers fire at different times.
                ctx.send_at(SimTime::from_us(1.0), self.sink, Msg::Record(self.tag));
            }
        }
        let mut engine: Engine<Msg> = Engine::new(0);
        let sink = engine.add(Sink { seen: Vec::new() });
        let a = engine.add(At { sink, tag: 10 });
        let b = engine.add(At { sink, tag: 20 });
        // Fire b's handler before a's: both aim at the same instant, and
        // the sink still sees a's message (lower component id) first.
        engine.schedule_at(SimTime::ZERO, b, Msg::Tick(0));
        engine.schedule_at(SimTime::from_ns(1), a, Msg::Tick(0));
        engine.run();
        let ids: Vec<u32> = engine
            .component_ref::<Sink>(sink)
            .unwrap()
            .seen
            .iter()
            .map(|(_, i)| *i)
            .collect();
        assert_eq!(ids, vec![10, 20]);
    }

    #[test]
    fn run_until_deadline_stops_early() {
        let (mut engine, _, _) = build(100);
        let outcome = engine.run_until(SimTime::from_us(10.5));
        assert_eq!(outcome, RunOutcome::DeadlineReached);
        assert_eq!(engine.now(), SimTime::from_us(10.0));
        assert!(engine.pending_events() > 0);
        // Resume to completion.
        assert_eq!(engine.run_until(SimTime::MAX), RunOutcome::Halted);
    }

    #[test]
    fn budget_exhaustion_reports() {
        let (mut engine, _, _) = build(1000);
        let outcome = engine.run_bounded(SimTime::MAX, 10);
        assert_eq!(outcome, RunOutcome::BudgetExhausted);
        assert_eq!(engine.events_processed(), 10);
    }

    #[test]
    fn queue_drain_reports_idle() {
        let mut engine: Engine<Msg> = Engine::new(0);
        let sink = engine.add(Sink { seen: Vec::new() });
        engine.schedule_at(SimTime::from_us(1.0), sink, Msg::Record(7));
        assert_eq!(engine.run_until(SimTime::MAX), RunOutcome::Idle);
        assert_eq!(engine.now(), SimTime::from_us(1.0));
    }

    #[test]
    fn counters_and_trace_capture_activity() {
        let (mut engine, _, _) = build(9);
        engine.enable_trace();
        engine.run();
        assert_eq!(engine.counters().get("records"), 10);
        assert_eq!(engine.trace().count("record"), 10);
    }

    #[test]
    fn recorder_folds_spans_emitted_through_ctx() {
        use crate::span::{Phase, SpanEvent};

        struct Op {
            sink: ComponentId,
        }
        impl Component<Msg> for Op {
            fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
                match msg {
                    Msg::Tick(0) => {
                        ctx.span(SpanEvent::OpBegin { group: 7, seq: 0 });
                        ctx.send_self(SimTime::MICROSECOND, Msg::Tick(1));
                    }
                    Msg::Tick(1) => {
                        ctx.span(SpanEvent::Fire { unit: 0, dst: 1 });
                        ctx.send_self(SimTime::MICROSECOND, Msg::Tick(2));
                    }
                    Msg::Tick(2) => {
                        ctx.span(SpanEvent::OpEnd { group: 7, seq: 0 });
                        ctx.send(SimTime::ZERO, self.sink, Msg::Stop);
                    }
                    _ => unreachable!(),
                }
            }
        }
        let mut engine: Engine<Msg> = Engine::new(0);
        let sink = engine.add(Sink { seen: Vec::new() });
        let op = engine.add(Op { sink });
        engine.enable_recorder();
        engine.recorder_mut().set_participants(1);
        engine.schedule_at(SimTime::ZERO, op, Msg::Tick(0));
        engine.run();
        // Recorder active, trace still off: span events were folded but the
        // ring stayed empty.
        assert!(engine.trace().is_empty());
        let spans = engine.recorder().completed();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].total(), SimTime::from_us(2.0));
        assert_eq!(spans[0].phase(Phase::Fire), 1_000);
        assert_eq!(spans[0].phase(Phase::Host), 1_000);
    }

    #[test]
    fn component_downcast() {
        let (mut engine, ticker, sink) = build(1);
        engine.run();
        assert!(engine.component_ref::<Sink>(sink).is_some());
        assert!(engine.component_ref::<Ticker>(sink).is_none());
        assert!(engine.component_mut::<Ticker>(ticker).is_some());
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_install_panics() {
        let mut engine: Engine<Msg> = Engine::new(0);
        let id = engine.add(Sink { seen: Vec::new() });
        engine.install(id, Sink { seen: Vec::new() });
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let (mut engine, ticker, _) = build(3);
        engine.run();
        engine.schedule_at(SimTime::ZERO, ticker, Msg::Tick(0));
    }

    #[test]
    fn send_at_clamps_past_times_and_counts() {
        struct BackSender {
            sink: ComponentId,
        }
        impl Component<Msg> for BackSender {
            fn handle(&mut self, _msg: Msg, ctx: &mut Ctx<'_, Msg>) {
                // Deliberately aim one microsecond into the past.
                ctx.send_at(SimTime::ZERO, self.sink, Msg::Record(9));
            }
        }
        let mut engine: Engine<Msg> = Engine::new(0);
        let sink_id = engine.reserve_id();
        let back_id = engine.reserve_id();
        engine.install(sink_id, Sink { seen: Vec::new() });
        engine.install(back_id, BackSender { sink: sink_id });
        engine.schedule_at(SimTime::from_us(1.0), back_id, Msg::Tick(0));
        engine.run();
        let sink = engine.component_ref::<Sink>(sink_id).unwrap();
        // Clamped to the send time, not dropped or delivered early.
        assert_eq!(sink.seen, vec![(SimTime::from_us(1.0), 9)]);
        assert_eq!(engine.counters().get("sim.clamped_sends"), 1);
    }

    #[test]
    fn send_at_future_times_do_not_count_as_clamped() {
        struct FwdSender {
            sink: ComponentId,
        }
        impl Component<Msg> for FwdSender {
            fn handle(&mut self, _msg: Msg, ctx: &mut Ctx<'_, Msg>) {
                ctx.send_at(SimTime::from_us(2.0), self.sink, Msg::Record(1));
            }
        }
        let mut engine: Engine<Msg> = Engine::new(0);
        let sink_id = engine.reserve_id();
        let fwd_id = engine.reserve_id();
        engine.install(sink_id, Sink { seen: Vec::new() });
        engine.install(fwd_id, FwdSender { sink: sink_id });
        engine.schedule_at(SimTime::ZERO, fwd_id, Msg::Tick(0));
        engine.run();
        assert_eq!(engine.counters().get("sim.clamped_sends"), 0);
        assert_eq!(engine.now(), SimTime::from_us(2.0));
    }

    /// Each component's RNG stream is independent of every other
    /// component's draw volume — the property that keeps randomized runs
    /// identical across shard counts.
    #[test]
    fn component_rng_streams_are_draw_independent() {
        struct Drawer {
            draws: usize,
            got: Vec<u64>,
        }
        impl Component<Msg> for Drawer {
            fn handle(&mut self, _msg: Msg, ctx: &mut Ctx<'_, Msg>) {
                for _ in 0..self.draws {
                    let v = ctx.rng().next_u64();
                    self.got.push(v);
                }
            }
        }
        let run = |other_draws: usize| {
            let mut engine: Engine<Msg> = Engine::new(7);
            let a = engine.add(Drawer {
                draws: 3,
                got: Vec::new(),
            });
            let b = engine.add(Drawer {
                draws: other_draws,
                got: Vec::new(),
            });
            engine.schedule_at(SimTime::ZERO, b, Msg::Tick(0));
            engine.schedule_at(SimTime::MICROSECOND, a, Msg::Tick(0));
            engine.run();
            engine.component_ref::<Drawer>(a).unwrap().got.clone()
        };
        // However many draws b makes (even before a runs), a's stream is
        // unchanged.
        assert_eq!(run(0), run(17));
    }

    #[test]
    fn both_schedulers_run_identically() {
        let run = |kind: SchedulerKind| {
            let (mut engine, _, sink) = build_on(50, kind);
            engine.run();
            let sink = engine.component_ref::<Sink>(sink).unwrap();
            (engine.now(), engine.events_processed(), sink.seen.clone())
        };
        let wheel = run(SchedulerKind::TimingWheel);
        assert_eq!(wheel, run(SchedulerKind::Indexed4));
        assert_eq!(wheel, run(SchedulerKind::ClassicBinaryHeap));
    }

    #[test]
    fn determinism_across_reruns() {
        let run = || {
            let (mut engine, _, sink) = build(50);
            engine.run();
            let sink = engine.component_ref::<Sink>(sink).unwrap();
            (engine.now(), engine.events_processed(), sink.seen.clone())
        };
        assert_eq!(run(), run());
    }
}
