//! Engine self-telemetry: a typed metrics registry plus the shard-level
//! self-profiler behind the parallel engine's `--prof` mode.
//!
//! PRs 2–3 built observability for the *simulated* protocol; this module
//! watches the watcher. The rank-sharded parallel engine
//! ([`crate::parallel`]) wins or loses its speedup gate for reasons the
//! simulated-time instruments cannot see: shard imbalance, conservative
//! lookahead stalls, mailbox traffic. The profiler records, per shard and
//! per conservative window, what each worker actually did with its wall
//! time, and exposes enough structure to name the dominant bottleneck.
//!
//! ## The registry
//!
//! [`Telemetry`] is the third interned-name value store in this crate,
//! mirroring [`crate::counters`] and [`crate::hist`] exactly: names are
//! `&'static str` interned once per process into dense [`MetricId`] slots,
//! hot call sites cache the id with [`crate::metric_id!`], and reporting
//! is name-ordered with untouched metrics skipped. Unlike plain counters
//! it is *typed*: one id space carries monotone counters, last/peak-value
//! gauges, and log2 histograms (reusing [`crate::hist::Histogram`]).
//!
//! All engine self-measurement goes through this registry — a lint rule
//! (OB001) bans ad-hoc `println!`-style telemetry in `crates/sim`.
//!
//! ## Zero cost when disabled
//!
//! The profiler is an `Option<ShardProf>` per shard state, `None` unless
//! [`crate::ParallelEngine::enable_prof`] was called. Every hook in the
//! worker loop is window-granular (windows are coarse: thousands of events
//! each), guarded by one `Option` branch, and allocation-free in the
//! disabled path — the steady-state allocation gate covers the parallel
//! engine with the profiler off, and `engine_prof --check` bounds the
//! disabled-path throughput overhead at 2%.
//!
//! ## Wall clocks
//!
//! This module is the **only** place in `crates/sim` that reads a wall
//! clock ([`ProfClock`] wraps `std::time::Instant`). Wall time never
//! reaches simulated state — it only flows outward into reports — so the
//! determinism story is intact; the ND001 lint exception for this file is
//! recorded in `lint.toml`.

use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Metric registry
// ---------------------------------------------------------------------------

/// Dense index of an interned metric name. Obtain one with
/// [`intern_metric`] or the [`crate::metric_id!`] macro.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MetricId(u32);

impl MetricId {
    /// The dense slot index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The interned name.
    pub fn name(self) -> &'static str {
        registry().lock().expect("metric registry poisoned").names[self.index()]
    }

    /// Rebuild an id from its raw index. Only meant for the
    /// [`crate::metric_id!`] macro's cache.
    #[doc(hidden)]
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        MetricId(raw)
    }
}

/// Process-wide name table, separate from the counter and histogram tables.
struct Registry {
    names: Vec<&'static str>,
    lookup: BTreeMap<&'static str, MetricId>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            names: Vec::new(),
            lookup: BTreeMap::new(),
        })
    })
}

/// Intern `name`, returning its process-wide dense id (idempotent).
pub fn intern_metric(name: &'static str) -> MetricId {
    let mut reg = registry().lock().expect("metric registry poisoned");
    if let Some(&id) = reg.lookup.get(name) {
        return id;
    }
    let id = MetricId(u32::try_from(reg.names.len()).expect("metric name table overflow"));
    reg.names.push(name);
    reg.lookup.insert(name, id);
    id
}

fn lookup(name: &str) -> Option<MetricId> {
    registry()
        .lock()
        .expect("metric registry poisoned")
        .lookup
        .get(name)
        .copied()
}

/// Intern a metric name with a per-call-site cache, exactly like
/// [`crate::counter_id!`] does for counters.
#[macro_export]
macro_rules! metric_id {
    ($name:expr) => {{
        use ::std::sync::atomic::{AtomicU32, Ordering};
        static CACHE: AtomicU32 = AtomicU32::new(u32::MAX);
        let cached = CACHE.load(Ordering::Relaxed);
        if cached != u32::MAX {
            $crate::telemetry::MetricId::from_raw(cached)
        } else {
            let id = $crate::telemetry::intern_metric($name);
            CACHE.store(id.index() as u32, Ordering::Relaxed);
            id
        }
    }};
}

/// One reported metric value.
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Monotone count (events, bytes, crossings).
    Counter(u64),
    /// Point-in-time or high-water value (queue depths).
    Gauge(u64),
    /// Log2-bucketed sample distribution (per-window durations). Boxed:
    /// the histogram's bucket array dwarfs the scalar variants.
    Hist(Box<Histogram>),
}

/// A typed metric value store: dense slots indexed by [`MetricId`].
///
/// A slot's *kind* is decided by the first write ([`Telemetry::add`] makes
/// a counter, [`Telemetry::set`]/[`Telemetry::peak`] a gauge,
/// [`Telemetry::observe`] a histogram); mixing kinds on one id is a logic
/// error and panics in debug builds.
#[derive(Default, Clone, Debug)]
pub struct Telemetry {
    slots: Vec<Slot>,
}

#[derive(Clone, Default, Debug)]
enum Slot {
    #[default]
    Empty,
    Counter(u64),
    Gauge(u64),
    Hist(Box<Histogram>),
}

impl Telemetry {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn slot(&mut self, id: MetricId) -> &mut Slot {
        let idx = id.index();
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, Slot::default);
        }
        &mut self.slots[idx]
    }

    /// Add `n` to the counter `id` (creating it at zero).
    #[inline]
    pub fn add(&mut self, id: MetricId, n: u64) {
        match self.slot(id) {
            s @ Slot::Empty => *s = Slot::Counter(n),
            Slot::Counter(v) => *v += n,
            _ => debug_assert!(false, "metric {} is not a counter", id.name()),
        }
    }

    /// Set gauge `id` to `v` (last-value semantics).
    #[inline]
    pub fn set(&mut self, id: MetricId, v: u64) {
        match self.slot(id) {
            s @ Slot::Empty => *s = Slot::Gauge(v),
            Slot::Gauge(g) => *g = v,
            _ => debug_assert!(false, "metric {} is not a gauge", id.name()),
        }
    }

    /// Fold `v` into gauge `id` keeping the maximum (high-water semantics).
    #[inline]
    pub fn peak(&mut self, id: MetricId, v: u64) {
        match self.slot(id) {
            s @ Slot::Empty => *s = Slot::Gauge(v),
            Slot::Gauge(g) => *g = (*g).max(v),
            _ => debug_assert!(false, "metric {} is not a gauge", id.name()),
        }
    }

    /// Record sample `v` into histogram `id`.
    #[inline]
    pub fn observe(&mut self, id: MetricId, v: u64) {
        match self.slot(id) {
            s @ Slot::Empty => {
                let mut h = Box::new(Histogram::new());
                h.record(v);
                *s = Slot::Hist(h);
            }
            Slot::Hist(h) => h.record(v),
            _ => debug_assert!(false, "metric {} is not a histogram", id.name()),
        }
    }

    /// Current counter value (zero if absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match lookup(name).and_then(|id| self.slots.get(id.index())) {
            Some(Slot::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Current gauge value (zero if absent or not a gauge).
    pub fn gauge(&self, name: &str) -> u64 {
        match lookup(name).and_then(|id| self.slots.get(id.index())) {
            Some(Slot::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// The histogram for `name`, if samples were recorded here.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        match lookup(name).and_then(|id| self.slots.get(id.index())) {
            Some(Slot::Hist(h)) => Some(h),
            _ => None,
        }
    }

    /// Name-ordered `(name, value)` pairs of every touched metric.
    pub fn collect(&self) -> Vec<(&'static str, MetricValue)> {
        let reg = registry().lock().expect("metric registry poisoned");
        reg.lookup
            .iter()
            .filter_map(|(&name, &id)| {
                let v = match self.slots.get(id.index())? {
                    Slot::Empty => return None,
                    Slot::Counter(v) => MetricValue::Counter(*v),
                    Slot::Gauge(v) => MetricValue::Gauge(*v),
                    Slot::Hist(h) => MetricValue::Hist(h.clone()),
                };
                Some((name, v))
            })
            .collect()
    }

    /// Merge another store into this one: counters add, gauges keep the
    /// maximum (the only cross-shard fold that makes sense for high-water
    /// marks), histograms merge.
    pub fn merge(&mut self, other: &Telemetry) {
        for (idx, slot) in other.slots.iter().enumerate() {
            let id = MetricId(u32::try_from(idx).expect("metric table overflow"));
            match slot {
                Slot::Empty => {}
                Slot::Counter(v) => self.add(id, *v),
                Slot::Gauge(v) => self.peak(id, *v),
                Slot::Hist(h) => match self.slot(id) {
                    s @ Slot::Empty => *s = Slot::Hist(h.clone()),
                    Slot::Hist(mine) => mine.merge(h),
                    _ => debug_assert!(false, "metric {} kind mismatch in merge", id.name()),
                },
            }
        }
    }

    /// True if no metric was touched.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| matches!(s, Slot::Empty))
    }
}

// ---------------------------------------------------------------------------
// Wall clock
// ---------------------------------------------------------------------------

/// The profiler's wall clock: nanoseconds since a shared epoch.
///
/// Every shard profiler of one engine shares the same epoch so their
/// timelines align in the exported trace. This type is the only sanctioned
/// wall-clock reader in `crates/sim` (see the module docs); wall time
/// never feeds back into simulated state.
#[derive(Clone, Copy, Debug)]
pub struct ProfClock {
    epoch: Instant,
}

impl ProfClock {
    /// A clock whose epoch is "now".
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        ProfClock {
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

// ---------------------------------------------------------------------------
// Per-window records
// ---------------------------------------------------------------------------

/// What one shard did during one conservative window iteration.
///
/// Sim-time fields (`horizon_ns`, `end_ns`, `advance_ns`) describe the
/// window the conservative protocol granted; wall-time fields (`*_ns`
/// durations plus the two timestamps) describe what the worker thread
/// spent executing it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowRec {
    /// Wall timestamp of the iteration start (mailbox drain begin).
    pub t0_ns: u64,
    /// Wall timestamp at which event execution (`run_window`) began.
    pub busy_start_ns: u64,
    /// Global simulated-time horizon `h` when the window opened.
    pub horizon_ns: u64,
    /// Window end bound: `h + lookahead`, capped by the run deadline.
    pub end_ns: u64,
    /// Simulated time actually advanced inside the window (last delivered
    /// event time minus `h`); `advance/span` is the window utilization.
    pub advance_ns: u64,
    /// Events delivered in this window.
    pub events: u64,
    /// Event-queue depth at window open (after the mailbox drain).
    pub queue_depth: u64,
    /// Wall time executing events (`run_window`).
    pub busy_ns: u64,
    /// Wall time draining inbound mailboxes and depositing outboxes.
    pub drain_ns: u64,
    /// Wall time blocked on the two window barriers.
    pub idle_ns: u64,
    /// Cross-shard events received in the drain phase.
    pub recv: u64,
    /// Cross-shard events deposited for other shards.
    pub sent: u64,
}

impl WindowRec {
    /// Sim-time span the conservative protocol granted this window.
    pub fn span_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.horizon_ns)
    }

    /// Window utilization in percent: how much of the granted lookahead
    /// span held events (100 for a fully used window, 0 for an empty one).
    pub fn util_pct(&self) -> u64 {
        let span = self.span_ns();
        if span == 0 {
            return 0;
        }
        (self.advance_ns.min(span)).saturating_mul(100) / span
    }
}

/// Window records kept per shard before the ring saturates; totals keep
/// accumulating past the cap, only the per-window detail is dropped.
pub const MAX_WINDOWS: usize = 65_536;

// ---------------------------------------------------------------------------
// Shard profiler
// ---------------------------------------------------------------------------

/// Per-shard self-profiler, owned by one worker and fed by window-granular
/// hooks in the worker loop. All aggregate measurement goes through the
/// [`Telemetry`] registry; the per-window ring is kept alongside for the
/// timeline export.
#[derive(Clone, Debug)]
pub struct ShardProf {
    clock: ProfClock,
    shards: usize,
    /// Committed per-window records, capped at [`MAX_WINDOWS`].
    windows: Vec<WindowRec>,
    /// Flat `windows.len() * shards` matrix: events deposited per
    /// destination shard, per window (for mailbox flow events).
    sent_to: Vec<u64>,
    /// Windows whose detail was dropped once the ring filled.
    dropped_windows: u64,
    /// Registry-backed aggregates (survive the window cap).
    metrics: Telemetry,
    wall_first_ns: u64,
    wall_last_ns: u64,
    cur: WindowRec,
    cur_sent: Vec<u64>,
    mark_ns: u64,
}

/// Metric names the shard profiler writes. Centralised so reports and
/// tests spell them identically.
pub mod metric {
    /// Counter: events delivered by this shard.
    pub const EVENTS: &str = "engine.events";
    /// Counter: windows executed (including ones past the detail cap).
    pub const WINDOWS: &str = "engine.windows";
    /// Counter: wall nanoseconds executing events.
    pub const BUSY_NS: &str = "engine.busy_ns";
    /// Counter: wall nanoseconds blocked on window barriers.
    pub const IDLE_NS: &str = "engine.idle_ns";
    /// Counter: wall nanoseconds draining/depositing mailboxes.
    pub const DRAIN_NS: &str = "engine.drain_ns";
    /// Counter: cross-shard events received.
    pub const RECV: &str = "engine.mailbox.recv";
    /// Counter: cross-shard events sent.
    pub const SENT: &str = "engine.mailbox.sent";
    /// Gauge (high water): event-queue depth at window open.
    pub const QUEUE_HWM: &str = "engine.queue.hwm";
    /// Histogram: events per window.
    pub const WINDOW_EVENTS: &str = "engine.window.events";
    /// Histogram: per-window utilization percent (see
    /// [`super::WindowRec::util_pct`]).
    pub const WINDOW_UTIL: &str = "engine.window.util_pct";
    /// Histogram: mailbox drain batch size (events per drain with ≥1).
    pub const DRAIN_BATCH: &str = "engine.mailbox.drain_batch";
}

impl ShardProf {
    /// A profiler for one shard of a `shards`-way engine, timestamping
    /// against the engine-shared `clock`.
    pub fn new(shards: usize, clock: ProfClock) -> Self {
        ShardProf {
            clock,
            shards,
            windows: Vec::new(),
            sent_to: Vec::new(),
            dropped_windows: 0,
            metrics: Telemetry::new(),
            wall_first_ns: u64::MAX,
            wall_last_ns: 0,
            cur: WindowRec::default(),
            cur_sent: vec![0; shards],
            mark_ns: 0,
        }
    }

    #[inline]
    fn stamp(&mut self) -> u64 {
        let now = self.clock.now_ns();
        if self.wall_first_ns == u64::MAX {
            self.wall_first_ns = now;
        }
        self.wall_last_ns = now;
        now
    }

    /// Start a new window iteration (before the mailbox drain).
    #[inline]
    pub fn window_open(&mut self) {
        let now = self.stamp();
        self.cur = WindowRec {
            t0_ns: now,
            ..WindowRec::default()
        };
        for s in &mut self.cur_sent {
            *s = 0;
        }
        self.mark_ns = now;
    }

    /// Begin a mailbox drain or outbox deposit phase.
    #[inline]
    pub fn drain_begin(&mut self) {
        self.mark_ns = self.stamp();
    }

    /// End a drain/deposit phase; `received` counts inbound cross-shard
    /// events pulled out of the mailboxes (0 for deposit phases).
    #[inline]
    pub fn drain_end(&mut self, received: u64) {
        let now = self.stamp();
        self.cur.drain_ns += now.saturating_sub(self.mark_ns);
        self.cur.recv += received;
        if received > 0 {
            self.metrics
                .observe(metric_id!(metric::DRAIN_BATCH), received);
        }
    }

    /// Begin a barrier wait.
    #[inline]
    pub fn idle_begin(&mut self) {
        self.mark_ns = self.stamp();
    }

    /// End a barrier wait.
    #[inline]
    pub fn idle_end(&mut self) {
        let now = self.stamp();
        self.cur.idle_ns += now.saturating_sub(self.mark_ns);
    }

    /// Begin event execution for the window `[horizon_ns, end_ns)` with
    /// `queue_depth` events pending.
    #[inline]
    pub fn busy_begin(&mut self, horizon_ns: u64, end_ns: u64, queue_depth: u64) {
        let now = self.stamp();
        self.cur.horizon_ns = horizon_ns;
        self.cur.end_ns = end_ns;
        self.cur.queue_depth = queue_depth;
        self.cur.busy_start_ns = now;
        self.mark_ns = now;
    }

    /// End event execution: `events` delivered, simulated time advanced by
    /// `advance_ns` past the horizon.
    #[inline]
    pub fn busy_end(&mut self, events: u64, advance_ns: u64) {
        let now = self.stamp();
        self.cur.busy_ns += now.saturating_sub(self.mark_ns);
        self.cur.events += events;
        self.cur.advance_ns = advance_ns;
    }

    /// Count `events` deposited for shard `dst` this window.
    #[inline]
    pub fn deposit(&mut self, dst: usize, events: u64) {
        self.cur_sent[dst] += events;
        self.cur.sent += events;
    }

    /// Commit the current window: fold aggregates into the registry and
    /// append the detail record (unless the ring is full).
    pub fn commit_window(&mut self) {
        self.stamp();
        let w = self.cur;
        let m = &mut self.metrics;
        m.add(metric_id!(metric::WINDOWS), 1);
        m.add(metric_id!(metric::EVENTS), w.events);
        m.add(metric_id!(metric::BUSY_NS), w.busy_ns);
        m.add(metric_id!(metric::IDLE_NS), w.idle_ns);
        m.add(metric_id!(metric::DRAIN_NS), w.drain_ns);
        m.add(metric_id!(metric::RECV), w.recv);
        m.add(metric_id!(metric::SENT), w.sent);
        m.peak(metric_id!(metric::QUEUE_HWM), w.queue_depth);
        m.observe(metric_id!(metric::WINDOW_EVENTS), w.events);
        m.observe(metric_id!(metric::WINDOW_UTIL), w.util_pct());
        if self.windows.len() < MAX_WINDOWS {
            self.windows.push(w);
            self.sent_to.extend_from_slice(&self.cur_sent);
        } else {
            self.dropped_windows += 1;
        }
    }

    /// Snapshot this shard's capture for reporting.
    pub fn data(&self, shard: u32) -> ShardProfData {
        ShardProfData {
            shard,
            components: 0,
            wall_ns: self
                .wall_last_ns
                .saturating_sub(if self.wall_first_ns == u64::MAX {
                    self.wall_last_ns
                } else {
                    self.wall_first_ns
                }),
            busy_ns: self.metrics.counter(metric::BUSY_NS),
            idle_ns: self.metrics.counter(metric::IDLE_NS),
            drain_ns: self.metrics.counter(metric::DRAIN_NS),
            events: self.metrics.counter(metric::EVENTS),
            recv: self.metrics.counter(metric::RECV),
            sent: self.metrics.counter(metric::SENT),
            queue_hwm: self.metrics.gauge(metric::QUEUE_HWM),
            window_count: self.metrics.counter(metric::WINDOWS),
            dropped_windows: self.dropped_windows,
            windows: self.windows.clone(),
            sent_to: self.sent_to.clone(),
            shards: self.shards,
            metrics: self.metrics.collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Engine-level snapshot and analysis
// ---------------------------------------------------------------------------

/// One shard's complete capture, detached from the live engine.
#[derive(Clone, Debug)]
pub struct ShardProfData {
    /// Shard index.
    pub shard: u32,
    /// Components mapped to this shard (filled by the engine snapshot).
    pub components: usize,
    /// Worker wall time: last profiler timestamp minus first.
    pub wall_ns: u64,
    /// Total wall nanoseconds executing events.
    pub busy_ns: u64,
    /// Total wall nanoseconds blocked on window barriers.
    pub idle_ns: u64,
    /// Total wall nanoseconds draining/depositing mailboxes.
    pub drain_ns: u64,
    /// Events delivered by this shard.
    pub events: u64,
    /// Cross-shard events received.
    pub recv: u64,
    /// Cross-shard events sent.
    pub sent: u64,
    /// Event-queue depth high-water mark at window open.
    pub queue_hwm: u64,
    /// Windows executed (including ones past the detail cap).
    pub window_count: u64,
    /// Windows whose per-window detail was dropped at [`MAX_WINDOWS`].
    pub dropped_windows: u64,
    /// Per-window detail records, in execution order.
    pub windows: Vec<WindowRec>,
    /// Flat `windows.len() * shards` matrix of per-destination sends.
    pub sent_to: Vec<u64>,
    /// Shard count of the owning engine (row stride of `sent_to`).
    pub shards: usize,
    /// Name-ordered registry view of every metric this shard touched.
    pub metrics: Vec<(&'static str, MetricValue)>,
}

impl ShardProfData {
    /// Wall time accounted for by the three tracked phases.
    pub fn accounted_ns(&self) -> u64 {
        self.busy_ns + self.idle_ns + self.drain_ns
    }

    /// Events this shard deposited for shard `dst` during window `w`.
    pub fn sent_to(&self, w: usize, dst: usize) -> u64 {
        self.sent_to
            .get(w * self.shards + dst)
            .copied()
            .unwrap_or(0)
    }
}

/// A complete engine self-profile: one capture per shard plus the engine
/// parameters the analysis needs.
#[derive(Clone, Debug)]
pub struct EngineProf {
    /// Shard count.
    pub shards: usize,
    /// Conservative lookahead bound (ns of simulated time per window).
    pub lookahead_ns: u64,
    /// Per-shard captures, shard-index order.
    pub data: Vec<ShardProfData>,
}

/// Where the engine's idle wall time went, in nanoseconds summed over all
/// shards. `imbalance + stall = idle`; mailbox time is tracked separately
/// because it is busy-adjacent work, not barrier idleness.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProfAttribution {
    /// Idle caused by uneven per-window busy times: faster shards waiting
    /// at the barrier for the slowest shard of each window.
    pub imbalance_ns: u64,
    /// Idle not explained by imbalance — the cost of the conservative
    /// window protocol itself (short windows, barrier overhead).
    pub stall_ns: u64,
    /// Wall time spent moving cross-shard events through mailboxes.
    pub mailbox_ns: u64,
    /// Total idle wall time (imbalance + stall).
    pub idle_ns: u64,
}

impl ProfAttribution {
    /// The dominant bottleneck category and its share of total lost time
    /// (idle + mailbox). Returns `("none", 0.0)` when nothing was lost.
    pub fn dominant(&self) -> (&'static str, f64) {
        let lost = self.idle_ns + self.mailbox_ns;
        if lost == 0 {
            return ("none", 0.0);
        }
        let cands = [
            ("imbalance", self.imbalance_ns),
            ("lookahead stall", self.stall_ns),
            ("mailbox contention", self.mailbox_ns),
        ];
        let (name, ns) = cands
            .into_iter()
            .max_by_key(|&(_, ns)| ns)
            .expect("non-empty candidate list");
        (name, ns as f64 / lost as f64)
    }
}

impl EngineProf {
    /// Imbalance factor: max over shards of total busy time divided by the
    /// mean (1.0 = perfectly balanced). Zero if nothing ran.
    pub fn imbalance_factor(&self) -> f64 {
        let busies: Vec<u64> = self.data.iter().map(|d| d.busy_ns).collect();
        let max = busies.iter().copied().max().unwrap_or(0);
        let sum: u64 = busies.iter().sum();
        if sum == 0 || busies.is_empty() {
            return 0.0;
        }
        let mean = sum as f64 / busies.len() as f64;
        max as f64 / mean
    }

    /// Fraction of delivered events that crossed a shard boundary.
    pub fn traffic_fraction(&self) -> f64 {
        let events: u64 = self.data.iter().map(|d| d.events).sum();
        let sent: u64 = self.data.iter().map(|d| d.sent).sum();
        if events == 0 {
            0.0
        } else {
            sent as f64 / events as f64
        }
    }

    /// Fraction of summed worker wall time accounted for by the tracked
    /// phases (busy + idle + drain). The `--check` gate requires ≥ 0.95.
    pub fn accounted_fraction(&self) -> f64 {
        let wall: u64 = self.data.iter().map(|d| d.wall_ns).sum();
        let acct: u64 = self.data.iter().map(|d| d.accounted_ns()).sum();
        if wall == 0 {
            0.0
        } else {
            acct as f64 / wall as f64
        }
    }

    /// Total events delivered across shards.
    pub fn total_events(&self) -> u64 {
        self.data.iter().map(|d| d.events).sum()
    }

    /// Attribute idle time to imbalance vs. lookahead stall, using the
    /// window-aligned structure of the two-barrier protocol: every shard
    /// executes the same window sequence, so for each window the idle
    /// caused by imbalance is the gap between each shard's busy time and
    /// the slowest shard's. Idle beyond that is protocol stall. Windows
    /// past the detail cap contribute to `idle` but cannot be split; they
    /// are attributed proportionally to the split of the detailed windows.
    pub fn attribution(&self) -> ProfAttribution {
        let idle_ns: u64 = self.data.iter().map(|d| d.idle_ns).sum();
        let mailbox_ns: u64 = self.data.iter().map(|d| d.drain_ns).sum();
        let aligned = self.data.iter().map(|d| d.windows.len()).min().unwrap_or(0);
        let mut detailed_imbalance = 0u64;
        let mut detailed_idle = 0u64;
        for w in 0..aligned {
            let busy_max = self
                .data
                .iter()
                .map(|d| d.windows[w].busy_ns)
                .max()
                .unwrap_or(0);
            for d in &self.data {
                detailed_imbalance += busy_max - d.windows[w].busy_ns;
                detailed_idle += d.windows[w].idle_ns;
            }
        }
        // Imbalance can only manifest as idle: clamp, then scale the
        // detailed split up to the full idle total when windows were
        // dropped from the ring.
        let detailed_imbalance = detailed_imbalance.min(detailed_idle);
        let imbalance_ns = if detailed_idle == 0 {
            0
        } else {
            ((detailed_imbalance as u128 * idle_ns as u128) / detailed_idle as u128) as u64
        };
        ProfAttribution {
            imbalance_ns,
            stall_ns: idle_ns.saturating_sub(imbalance_ns),
            mailbox_ns,
            idle_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_interns_and_reports_in_name_order() {
        let mut t = Telemetry::new();
        t.add(intern_metric("test.z"), 2);
        t.set(intern_metric("test.a"), 7);
        t.observe(intern_metric("test.m"), 100);
        let names: Vec<&str> = t.collect().iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(t.counter("test.z"), 2);
        assert_eq!(t.gauge("test.a"), 7);
        assert_eq!(t.hist("test.m").map(Histogram::count), Some(1));
    }

    #[test]
    fn metric_id_macro_caches() {
        let mut t = Telemetry::new();
        for _ in 0..10 {
            t.add(metric_id!("test.macro.cached"), 1);
        }
        assert_eq!(t.counter("test.macro.cached"), 10);
        assert_eq!(
            metric_id!("test.macro.cached"),
            intern_metric("test.macro.cached")
        );
    }

    #[test]
    fn gauge_semantics() {
        let mut t = Telemetry::new();
        let id = intern_metric("test.gauge.q");
        t.set(id, 5);
        t.set(id, 3);
        assert_eq!(t.gauge("test.gauge.q"), 3, "set keeps the latest");
        let hw = intern_metric("test.gauge.hw");
        t.peak(hw, 5);
        t.peak(hw, 3);
        assert_eq!(t.gauge("test.gauge.hw"), 5, "peak keeps the maximum");
    }

    #[test]
    fn merge_folds_by_kind() {
        let c = intern_metric("test.merge.c");
        let g = intern_metric("test.merge.g");
        let h = intern_metric("test.merge.h");
        let mut a = Telemetry::new();
        let mut b = Telemetry::new();
        a.add(c, 3);
        b.add(c, 4);
        a.peak(g, 10);
        b.peak(g, 12);
        a.observe(h, 1);
        b.observe(h, 1000);
        a.merge(&b);
        assert_eq!(a.counter("test.merge.c"), 7);
        assert_eq!(a.gauge("test.merge.g"), 12);
        let hist = a.hist("test.merge.h").expect("merged hist");
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.max(), 1000);
    }

    #[test]
    fn untouched_metrics_are_not_reported() {
        intern_metric("test.ghost");
        let t = Telemetry::new();
        assert!(t.is_empty());
        assert!(t.collect().is_empty());
        assert_eq!(t.counter("test.ghost"), 0);
    }

    #[test]
    fn window_util_pct() {
        let w = WindowRec {
            horizon_ns: 1000,
            end_ns: 2000,
            advance_ns: 400,
            ..WindowRec::default()
        };
        assert_eq!(w.span_ns(), 1000);
        assert_eq!(w.util_pct(), 40);
        let full = WindowRec {
            horizon_ns: 0,
            end_ns: 100,
            advance_ns: 250, // clamped: advance past end counts as full
            ..WindowRec::default()
        };
        assert_eq!(full.util_pct(), 100);
        assert_eq!(WindowRec::default().util_pct(), 0);
    }

    /// Drive the hook protocol by hand and check the totals, the window
    /// ring, and the registry view agree.
    #[test]
    fn shard_prof_accumulates_and_accounts() {
        let clock = ProfClock::new();
        let mut p = ShardProf::new(2, clock);
        for w in 0..3u64 {
            p.window_open();
            p.drain_begin();
            p.drain_end(w); // w inbound events
            p.idle_begin();
            p.idle_end();
            p.busy_begin(w * 1000, w * 1000 + 500, 10 + w);
            p.busy_end(100 + w, 250);
            p.drain_begin();
            p.deposit(1, 2);
            p.drain_end(0);
            p.idle_begin();
            p.idle_end();
            p.commit_window();
        }
        let d = p.data(0);
        assert_eq!(d.window_count, 3);
        assert_eq!(d.windows.len(), 3);
        assert_eq!(d.events, 303);
        assert_eq!(d.recv, 3);
        assert_eq!(d.sent, 6);
        assert_eq!(d.queue_hwm, 12);
        assert_eq!(d.sent_to(1, 1), 2);
        assert_eq!(d.sent_to(1, 0), 0);
        // Wall accounting: the hooks bracket every phase, so the three
        // totals cover (nearly) the whole first..last span.
        assert!(d.accounted_ns() <= d.wall_ns + 1);
        // Registry view carries the same totals under the shared names.
        let prof = EngineProf {
            shards: 2,
            lookahead_ns: 500,
            data: vec![d],
        };
        assert_eq!(prof.total_events(), 303);
        assert!(prof.traffic_fraction() > 0.0);
    }

    #[test]
    fn attribution_splits_imbalance_from_stall() {
        // Two shards, two aligned windows; shard 1 is always slower, and
        // shard 0's idle exactly mirrors the busy gap → pure imbalance.
        let mk = |busy: [u64; 2], idle: [u64; 2]| ShardProfData {
            shard: 0,
            components: 0,
            wall_ns: 0,
            busy_ns: busy.iter().sum(),
            idle_ns: idle.iter().sum(),
            drain_ns: 0,
            events: 10,
            recv: 0,
            sent: 0,
            queue_hwm: 0,
            window_count: 2,
            dropped_windows: 0,
            windows: (0..2)
                .map(|w| WindowRec {
                    busy_ns: busy[w],
                    idle_ns: idle[w],
                    ..WindowRec::default()
                })
                .collect(),
            sent_to: vec![0; 4],
            shards: 2,
            metrics: Vec::new(),
        };
        let prof = EngineProf {
            shards: 2,
            lookahead_ns: 1,
            data: vec![mk([100, 100], [900, 900]), mk([1000, 1000], [0, 0])],
        };
        let att = prof.attribution();
        assert_eq!(att.idle_ns, 1800);
        assert_eq!(att.imbalance_ns, 1800, "all idle is the busy gap");
        assert_eq!(att.stall_ns, 0);
        let (name, share) = att.dominant();
        assert_eq!(name, "imbalance");
        assert!((share - 1.0).abs() < 1e-9);
        assert!((prof.imbalance_factor() - 2000.0 / 1100.0).abs() < 1e-9);
    }

    #[test]
    fn attribution_with_no_gap_is_all_stall() {
        let d = ShardProfData {
            shard: 0,
            components: 0,
            wall_ns: 100,
            busy_ns: 50,
            idle_ns: 40,
            drain_ns: 5,
            events: 1,
            recv: 0,
            sent: 0,
            queue_hwm: 0,
            window_count: 1,
            dropped_windows: 0,
            windows: vec![WindowRec {
                busy_ns: 50,
                idle_ns: 40,
                ..WindowRec::default()
            }],
            sent_to: vec![0],
            shards: 1,
            metrics: Vec::new(),
        };
        let prof = EngineProf {
            shards: 1,
            lookahead_ns: 1,
            data: vec![d],
        };
        let att = prof.attribution();
        assert_eq!(att.imbalance_ns, 0);
        assert_eq!(att.stall_ns, 40);
        assert_eq!(att.mailbox_ns, 5);
        let (name, _) = att.dominant();
        assert_eq!(name, "lookahead stall");
        assert!((prof.accounted_fraction() - 0.95).abs() < 1e-9);
    }
}
