//! Resource-occupancy ledger: who held a contended resource, and when.
//!
//! The causal netdump ([`crate::causal`]) explains *which chain of events*
//! bounded an operation; it cannot explain *why an edge of that chain
//! waited*. This module adds the missing attribution half: every contended
//! resource — a NIC processor, a DMA engine, a per-destination send-token
//! queue, a receive-token pool, an Elan event/firing slot, a fabric rx
//! port — emits typed occupancy records stamped with an [`Owner`]
//! `(kind, group, seq, rank)`. A critical-path analyzer can then intersect
//! a barrier's wait intervals with the holds of *other* owners on the same
//! resource and name the interferer ("group 0xBB's broadcast held the send
//! token"), instead of reporting an anonymous queueing delay.
//!
//! Records live in a bounded [`Ledger`] buffer on the engine, disabled by
//! default. When disabled, [`crate::Ctx::ledger`] is a single predictable
//! branch, so the hot path pays nothing (the allocation gate covers this).
//!
//! Ownership rules (enforced by the emitting backends, documented here and
//! in DESIGN.md "Observability IV"):
//!
//! * **Serial resources** ([`ResKind::NicCpu`], [`ResKind::DmaEngine`],
//!   [`ResKind::ElanEngine`], [`ResKind::LinkPort`]) emit a [`LedgerOp::Hold`]
//!   interval on *every* charge — even uncontended ones — and a
//!   [`LedgerOp::Wait`] interval whenever a charge found the resource busy.
//!   Because charges arrive in nondecreasing simulation time, the holds tile
//!   every busy period contiguously, so each wait interval is covered by
//!   previously emitted holds *by construction* — the analyzer's ≥95%
//!   attribution gate is not a heuristic.
//! * **Counting resources** ([`ResKind::SendQueue`], [`ResKind::PacketPool`],
//!   [`ResKind::RecvTokens`], [`ResKind::EventSlot`]) bracket occupancy with
//!   [`LedgerOp::Acquire`]/[`LedgerOp::Release`] records instead; `unit`
//!   identifies the queue/slot instance.

use crate::engine::ComponentId;
use crate::time::SimTime;

/// Sentinel for [`LedgerRecord::unit`] when a resource has one instance.
pub const NO_UNIT: u64 = u64::MAX;

/// Which contended resource a [`LedgerRecord`] describes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ResKind {
    /// GM NIC (LANai) processor — serial; every protocol handler charges it.
    NicCpu,
    /// GM host↔NIC DMA engine — serial.
    DmaEngine,
    /// GM per-destination send-token queue — counting; `unit` = destination
    /// node.
    SendQueue,
    /// GM NIC send-packet buffer pool — counting.
    PacketPool,
    /// GM receive-token pool — counting.
    RecvTokens,
    /// Elan3 NIC microcode engine — serial; descriptor firing, event
    /// processing and tport handling all charge it.
    ElanEngine,
    /// Elan NIC event word — counting; `unit` = event index.
    EventSlot,
    /// Fabric destination rx port (the `port_wait` tag's resource) —
    /// serial; `unit` = destination node.
    LinkPort,
}

impl ResKind {
    /// Short stable name, used by exporters and the interference report.
    pub fn name(self) -> &'static str {
        match self {
            ResKind::NicCpu => "nic-cpu",
            ResKind::DmaEngine => "dma-engine",
            ResKind::SendQueue => "send-queue",
            ResKind::PacketPool => "packet-pool",
            ResKind::RecvTokens => "recv-tokens",
            ResKind::ElanEngine => "elan-engine",
            ResKind::EventSlot => "event-slot",
            ResKind::LinkPort => "link-port",
        }
    }

    /// Inverse of [`ResKind::name`] — used when re-ingesting exported
    /// ledgers.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "nic-cpu" => ResKind::NicCpu,
            "dma-engine" => ResKind::DmaEngine,
            "send-queue" => ResKind::SendQueue,
            "packet-pool" => ResKind::PacketPool,
            "recv-tokens" => ResKind::RecvTokens,
            "elan-engine" => ResKind::ElanEngine,
            "event-slot" => ResKind::EventSlot,
            "link-port" => ResKind::LinkPort,
            _ => return None,
        })
    }
}

/// What class of actor occupied (or wanted) a resource.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum OwnerKind {
    /// A collective operation: `group`/`seq` key the barrier exactly as the
    /// flight recorder keys spans.
    Collective,
    /// A background bulk-traffic stream (first-class owner: the
    /// interference scenario's whole point).
    Traffic,
    /// An application point-to-point message that is neither collective nor
    /// bulk traffic.
    P2p,
    /// Fabric/protocol overhead with no single flow to bill (ACK
    /// generation, retransmit sweeps, loss recovery).
    Fabric,
}

/// Who occupied (or wanted) a resource: `(kind, group, seq, rank)`.
///
/// `group`/`seq` are only meaningful for [`OwnerKind::Collective`] (other
/// kinds carry [`crate::NO_KEY`]); `rank` is the acting node for every kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Owner {
    /// Actor class.
    pub kind: OwnerKind,
    /// Collective group key, or [`crate::NO_KEY`].
    pub group: u64,
    /// Collective sequence (epoch) key, or [`crate::NO_KEY`].
    pub seq: u64,
    /// Acting node.
    pub rank: u32,
}

impl Owner {
    /// A collective owner keyed like its flight-recorder span.
    pub fn coll(group: u64, seq: u64, rank: u32) -> Self {
        Owner {
            kind: OwnerKind::Collective,
            group,
            seq,
            rank,
        }
    }

    /// A background bulk-traffic stream owner.
    pub fn traffic(rank: u32) -> Self {
        Owner {
            kind: OwnerKind::Traffic,
            group: crate::causal::NO_KEY,
            seq: crate::causal::NO_KEY,
            rank,
        }
    }

    /// A plain point-to-point owner.
    pub fn p2p(rank: u32) -> Self {
        Owner {
            kind: OwnerKind::P2p,
            group: crate::causal::NO_KEY,
            seq: crate::causal::NO_KEY,
            rank,
        }
    }

    /// Fabric/protocol overhead acting at `rank`.
    pub fn fabric(rank: u32) -> Self {
        Owner {
            kind: OwnerKind::Fabric,
            group: crate::causal::NO_KEY,
            seq: crate::causal::NO_KEY,
            rank,
        }
    }

    /// The same owner at a different collective sequence (Elan descriptors
    /// are armed once but fire every epoch).
    pub fn with_seq(mut self, seq: u64) -> Self {
        self.seq = seq;
        self
    }

    /// Human-readable interferer name for reports ("group 0xbb barrier",
    /// "bulk traffic (rank 3)").
    pub fn label(&self) -> String {
        match self.kind {
            OwnerKind::Collective => {
                format!("group {:#x} collective (rank {})", self.group, self.rank)
            }
            OwnerKind::Traffic => format!("bulk traffic (rank {})", self.rank),
            OwnerKind::P2p => format!("p2p message (rank {})", self.rank),
            OwnerKind::Fabric => format!("fabric/protocol (rank {})", self.rank),
        }
    }
}

/// What a [`LedgerRecord`] asserts about its resource.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LedgerOp {
    /// Owner took one unit of a counting resource at `t0` (`t1 == t0`).
    Acquire,
    /// Owner returned one unit of a counting resource at `t0` (`t1 == t0`).
    Release,
    /// Owner occupied a serial resource for the interval `[t0, t1)`.
    Hold,
    /// Owner *wanted* the resource during `[t0, t1)` but it was busy.
    Wait,
}

/// One occupancy event: `owner` did `op` on `(res, unit)` at `component`
/// over `[t0, t1)`.
///
/// Deliberately `Copy` with no causal ids inside: the parallel engine can
/// replay shard-local ledgers into the merged stream without any id
/// remapping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LedgerRecord {
    /// Interval start (or the instant, for acquire/release).
    pub t0: SimTime,
    /// Interval end (`== t0` for acquire/release).
    pub t1: SimTime,
    /// Which component recorded it.
    pub component: ComponentId,
    /// What happened.
    pub op: LedgerOp,
    /// Which resource.
    pub res: ResKind,
    /// The node the resource belongs to.
    pub node: u32,
    /// Resource instance (queue/slot index), or [`NO_UNIT`].
    pub unit: u64,
    /// Who did it.
    pub owner: Owner,
}

/// Builder-style argument bundle for [`crate::Ctx::ledger`]. Keeps emission
/// sites readable without an eight-argument call.
#[derive(Clone, Copy, Debug)]
pub struct Occ {
    /// Operation.
    pub op: LedgerOp,
    /// Resource kind.
    pub res: ResKind,
    /// Interval start.
    pub t0: SimTime,
    /// Interval end.
    pub t1: SimTime,
    /// Owning/acting node.
    pub node: u32,
    /// Resource instance, or [`NO_UNIT`].
    pub unit: u64,
    /// The actor.
    pub owner: Owner,
}

impl Occ {
    /// A serial-resource hold over `[t0, t1)`.
    pub fn hold(res: ResKind, t0: SimTime, t1: SimTime, node: u32, owner: Owner) -> Self {
        Occ {
            op: LedgerOp::Hold,
            res,
            t0,
            t1,
            node,
            unit: NO_UNIT,
            owner,
        }
    }

    /// A blocked interval `[t0, t1)` on a busy resource.
    pub fn wait(res: ResKind, t0: SimTime, t1: SimTime, node: u32, owner: Owner) -> Self {
        Occ {
            op: LedgerOp::Wait,
            res,
            t0,
            t1,
            node,
            unit: NO_UNIT,
            owner,
        }
    }

    /// A counting-resource acquisition at `t`.
    pub fn acquire(res: ResKind, t: SimTime, node: u32, owner: Owner) -> Self {
        Occ {
            op: LedgerOp::Acquire,
            res,
            t0: t,
            t1: t,
            node,
            unit: NO_UNIT,
            owner,
        }
    }

    /// A counting-resource release at `t`.
    pub fn release(res: ResKind, t: SimTime, node: u32, owner: Owner) -> Self {
        Occ {
            op: LedgerOp::Release,
            res,
            t0: t,
            t1: t,
            node,
            unit: NO_UNIT,
            owner,
        }
    }

    /// Attach the resource instance (queue index, slot number).
    pub fn unit(mut self, unit: u64) -> Self {
        self.unit = unit;
        self
    }
}

/// Bounded buffer of [`LedgerRecord`]s, owned by the engine.
///
/// Disabled by default; [`Ledger::enable`] arms it. When the buffer fills,
/// further records are counted in [`Ledger::dropped`] but not stored (the
/// `contend --check` gate asserts zero drops).
pub struct Ledger {
    enabled: bool,
    capacity: usize,
    records: Vec<LedgerRecord>,
    dropped: u64,
}

impl Ledger {
    /// Default record capacity. Occupancy records are denser than packet
    /// records (every charge emits a hold), so the bound matches the
    /// netdump's generous default.
    pub const DEFAULT_CAPACITY: usize = 1 << 21;

    /// A disabled ledger (records nothing, allocates nothing).
    pub fn disabled() -> Self {
        Ledger {
            enabled: false,
            capacity: Self::DEFAULT_CAPACITY,
            records: Vec::new(),
            dropped: 0,
        }
    }

    /// Arm the ledger with the default capacity.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Arm the ledger with an explicit record capacity.
    pub fn enable_with_capacity(&mut self, capacity: usize) {
        self.enabled = true;
        self.capacity = capacity;
    }

    /// Is the ledger recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one occupancy event.
    pub fn record(&mut self, record: LedgerRecord) {
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.dropped += 1;
        }
    }

    /// The captured records, in emission order.
    pub fn records(&self) -> &[LedgerRecord] {
        &self.records
    }

    /// Drain the captured records out of the buffer (harness use).
    pub fn take_records(&mut self) -> Vec<LedgerRecord> {
        std::mem::take(&mut self.records)
    }

    /// Records lost to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Forget everything captured so far (between measurement phases).
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code
mod tests {
    use super::*;

    #[test]
    fn res_kind_names_round_trip() {
        for k in [
            ResKind::NicCpu,
            ResKind::DmaEngine,
            ResKind::SendQueue,
            ResKind::PacketPool,
            ResKind::RecvTokens,
            ResKind::ElanEngine,
            ResKind::EventSlot,
            ResKind::LinkPort,
        ] {
            assert_eq!(ResKind::from_name(k.name()), Some(k));
        }
        assert_eq!(ResKind::from_name("no-such-resource"), None);
    }

    #[test]
    fn owner_constructors_and_labels() {
        let c = Owner::coll(0xBB, 7, 3);
        assert_eq!(c.kind, OwnerKind::Collective);
        assert_eq!((c.group, c.seq, c.rank), (0xBB, 7, 3));
        assert!(c.label().contains("0xbb"));
        assert_eq!(c.with_seq(9).seq, 9);
        let t = Owner::traffic(2);
        assert_eq!(t.group, crate::causal::NO_KEY);
        assert!(t.label().contains("traffic"));
        assert!(Owner::p2p(1).label().contains("p2p"));
        assert!(Owner::fabric(0).label().contains("fabric"));
    }

    #[test]
    fn capacity_overflow_counts_drops() {
        let mut l = Ledger::disabled();
        l.enable_with_capacity(1);
        let rec = |t: u64| LedgerRecord {
            t0: SimTime::from_ns(t),
            t1: SimTime::from_ns(t + 5),
            component: ComponentId(0),
            op: LedgerOp::Hold,
            res: ResKind::NicCpu,
            node: 0,
            unit: NO_UNIT,
            owner: Owner::fabric(0),
        };
        l.record(rec(0));
        l.record(rec(10));
        assert_eq!(l.len(), 1);
        assert_eq!(l.dropped(), 1);
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.dropped(), 0);
    }

    #[test]
    fn occ_builder_fills_every_field() {
        let o = Occ::hold(
            ResKind::LinkPort,
            SimTime::from_ns(3),
            SimTime::from_ns(9),
            4,
            Owner::traffic(1),
        )
        .unit(4);
        assert_eq!(o.op, LedgerOp::Hold);
        assert_eq!(o.unit, 4);
        let w = Occ::wait(
            ResKind::NicCpu,
            SimTime::from_ns(1),
            SimTime::from_ns(2),
            0,
            Owner::coll(1, 2, 0),
        );
        assert_eq!(w.op, LedgerOp::Wait);
        assert_eq!(w.unit, NO_UNIT);
        let a = Occ::acquire(ResKind::RecvTokens, SimTime::from_ns(5), 2, Owner::p2p(2));
        assert_eq!((a.op, a.t0), (LedgerOp::Acquire, a.t1));
        let r = Occ::release(ResKind::RecvTokens, SimTime::from_ns(6), 2, Owner::p2p(2));
        assert_eq!(r.op, LedgerOp::Release);
    }
}
