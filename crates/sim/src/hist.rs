//! Log2-bucketed latency histograms with interned registration.
//!
//! The flight recorder (see [`crate::span`]) needs cheap latency
//! distributions — p50/p95/p99/max per protocol phase — without allocating
//! per sample. A [`Histogram`] is a fixed array of power-of-two buckets:
//! recording a value is a `leading_zeros` plus one indexed add, and the
//! quantile estimates come from a cumulative walk over 65 counters.
//!
//! ## Interning
//!
//! Histogram names mirror the [`crate::counters`] scheme exactly: names are
//! `&'static str`, interned once per process into dense [`HistId`] slots,
//! and a [`Histograms`] set is just a `Vec<Histogram>` indexed by id. The
//! [`crate::hist_id!`] macro caches the id in a per-call-site atomic for
//! hot paths, and reporting ([`Histograms::iter`]) is name-ordered with
//! empty histograms skipped — the same contract counters give tests.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Number of buckets: bucket 0 holds the value 0, bucket `i >= 1` holds
/// values in `[2^(i-1), 2^i - 1]`, up to the full `u64` range.
pub const NUM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (typically nanoseconds).
#[derive(Clone)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

/// Bucket index for a value: 0 for 0, otherwise `1 + floor(log2(v))`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (used as the quantile estimate).
#[inline]
fn bucket_upper(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// where the cumulative count crosses `q * count`, clamped to the exact
    /// max. Within a factor of 2 of the true value by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Histogram(count={}, p50={}, p95={}, p99={}, max={})",
            self.count,
            self.p50(),
            self.p95(),
            self.p99(),
            self.max
        )
    }
}

/// Dense index of an interned histogram name. Obtain one with
/// [`intern_hist`] or the [`crate::hist_id!`] macro.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct HistId(u32);

impl HistId {
    /// The dense slot index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The interned name.
    pub fn name(self) -> &'static str {
        registry().lock().expect("hist registry poisoned").names[self.index()]
    }

    /// Rebuild an id from its raw index. Only meant for the
    /// [`crate::hist_id!`] macro's cache.
    #[doc(hidden)]
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        HistId(raw)
    }
}

/// Process-wide name table, separate from the counter table.
struct Registry {
    names: Vec<&'static str>,
    lookup: BTreeMap<&'static str, HistId>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            names: Vec::new(),
            lookup: BTreeMap::new(),
        })
    })
}

/// Intern `name`, returning its process-wide dense id (idempotent).
pub fn intern_hist(name: &'static str) -> HistId {
    let mut reg = registry().lock().expect("hist registry poisoned");
    if let Some(&id) = reg.lookup.get(name) {
        return id;
    }
    let id = HistId(u32::try_from(reg.names.len()).expect("hist name table overflow"));
    reg.names.push(name);
    reg.lookup.insert(name, id);
    id
}

fn lookup(name: &str) -> Option<HistId> {
    registry()
        .lock()
        .expect("hist registry poisoned")
        .lookup
        .get(name)
        .copied()
}

/// Intern a histogram name with a per-call-site cache, exactly like
/// [`crate::counter_id!`] does for counters.
#[macro_export]
macro_rules! hist_id {
    ($name:expr) => {{
        use ::std::sync::atomic::{AtomicU32, Ordering};
        static CACHE: AtomicU32 = AtomicU32::new(u32::MAX);
        let cached = CACHE.load(Ordering::Relaxed);
        if cached != u32::MAX {
            $crate::hist::HistId::from_raw(cached)
        } else {
            let id = $crate::hist::intern_hist($name);
            CACHE.store(id.index() as u32, Ordering::Relaxed);
            id
        }
    }};
}

/// A set of named histograms in dense slots indexed by [`HistId`].
#[derive(Default, Clone)]
pub struct Histograms {
    slots: Vec<Histogram>,
}

impl Histograms {
    /// Create an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `v` into the histogram with interned id `id`.
    #[inline]
    pub fn record_id(&mut self, id: HistId, v: u64) {
        let idx = id.index();
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, Histogram::default);
        }
        self.slots[idx].record(v);
    }

    /// Record `v` into histogram `name`, interning it first (cold-path
    /// convenience).
    #[inline]
    pub fn record(&mut self, name: &'static str, v: u64) {
        self.record_id(intern_hist(name), v);
    }

    /// The histogram for `name`, if any samples were recorded here.
    pub fn get(&self, name: &str) -> Option<&Histogram> {
        lookup(name)
            .and_then(|id| self.slots.get(id.index()))
            .filter(|h| !h.is_empty())
    }

    /// The histogram for an interned id, if any samples were recorded here.
    pub fn get_id(&self, id: HistId) -> Option<&Histogram> {
        self.slots.get(id.index()).filter(|h| !h.is_empty())
    }

    /// Name-ordered `(name, histogram)` pairs of the non-empty histograms.
    pub fn iter(&self) -> Vec<(&'static str, &Histogram)> {
        let reg = registry().lock().expect("hist registry poisoned");
        reg.lookup
            .iter()
            .filter_map(|(&name, &id)| {
                self.slots
                    .get(id.index())
                    .filter(|h| !h.is_empty())
                    .map(|h| (name, h))
            })
            .collect()
    }

    /// True if no histogram has any samples.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|h| h.is_empty())
    }

    /// Reset every histogram.
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

impl fmt::Debug for Histograms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 221.2).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        // 99 samples at 10 (bucket [8,15]), one at 1000.
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1000);
        assert_eq!(h.p50(), 15);
        assert_eq!(h.p95(), 15);
        // The 100th sample lands in the [512,1023] bucket, clamped to max.
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.p99(), 15);
    }

    #[test]
    fn quantile_clamps_to_exact_max() {
        let mut h = Histogram::new();
        h.record(9);
        // Upper bound of bucket [8,15] is 15, but the true max is 9.
        assert_eq!(h.p50(), 9);
        assert_eq!(h.p99(), 9);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p95(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_owns_every_quantile() {
        let mut h = Histogram::new();
        h.record(777);
        // With one sample, every quantile is that sample (clamped to max).
        assert_eq!(h.p50(), 777);
        assert_eq!(h.p95(), 777);
        assert_eq!(h.p99(), 777);
        assert_eq!(h.quantile(0.0), 777);
        assert_eq!(h.quantile(1.0), 777);
    }

    #[test]
    fn max_value_saturates_top_bucket_and_sum() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        // Sum saturates instead of wrapping.
        assert_eq!(h.sum(), u64::MAX);
        // Both samples land in the top bucket and quantiles stay sane.
        assert_eq!(h.p50(), u64::MAX);
        assert_eq!(h.p99(), u64::MAX);
        // Merging two saturated histograms must not overflow either.
        let other = h.clone();
        h.merge(&other);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
    }

    proptest::proptest! {
        /// Quantiles are monotone in `q` for any sample set: p50 <= p95 <= p99
        /// <= max, and every estimate is bounded by the exact max.
        #[test]
        fn quantiles_are_monotone(samples in proptest::collection::vec(proptest::any::<u64>(), 0..64)) {
            let mut h = Histogram::new();
            for &v in &samples {
                h.record(v);
            }
            let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
            proptest::prop_assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
            proptest::prop_assert!(p95 <= p99, "p95 {p95} > p99 {p99}");
            proptest::prop_assert!(p99 <= h.max(), "p99 {p99} > max {}", h.max());
            if !samples.is_empty() {
                let true_min = *samples.iter().min().unwrap();
                // A quantile estimate never undershoots the smallest sample.
                proptest::prop_assert!(p50 >= true_min.min(h.p50()));
                proptest::prop_assert!(h.quantile(1.0) == h.max());
            }
        }
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 500);
        assert_eq!(a.sum(), 505);
    }

    #[test]
    fn interned_ids_are_stable() {
        let a = intern_hist("stable.hist");
        let b = intern_hist("stable.hist");
        assert_eq!(a, b);
        assert_eq!(a.name(), "stable.hist");
    }

    #[test]
    fn hist_id_macro_caches() {
        let mut hs = Histograms::new();
        for i in 0..10 {
            hs.record_id(hist_id!("macro.hist"), i);
        }
        assert_eq!(hs.get("macro.hist").unwrap().count(), 10);
        assert_eq!(hist_id!("macro.hist"), intern_hist("macro.hist"));
    }

    #[test]
    fn sets_do_not_share_samples_and_iteration_is_name_ordered() {
        let mut a = Histograms::new();
        let mut b = Histograms::new();
        a.record("shared.hist.name", 1);
        b.record("shared.hist.name", 2);
        a.record("a.first", 3);
        assert_eq!(a.get("shared.hist.name").unwrap().count(), 1);
        assert_eq!(b.get("shared.hist.name").unwrap().count(), 1);
        let names: Vec<&str> = a.iter().into_iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn empty_histograms_are_not_reported() {
        intern_hist("ghost.hist");
        let hs = Histograms::new();
        assert!(hs.get("ghost.hist").is_none());
        assert!(hs.iter().is_empty());
    }
}
