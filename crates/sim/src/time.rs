//! Virtual time.
//!
//! All simulated latencies are kept in integer nanoseconds. The paper reports
//! barrier latencies in microseconds, so [`SimTime`] carries µs conversion
//! helpers; nanosecond integer arithmetic keeps event ordering exact (no FP
//! accumulation error across the 10⁴-iteration benchmark loops).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, in nanoseconds.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the
/// arithmetic never distinguishes the two, mirroring plain `u64` ns counters
/// in production event-driven simulators.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero / the empty duration.
    pub const ZERO: SimTime = SimTime(0);
    /// One nanosecond.
    pub const NANOSECOND: SimTime = SimTime(1);
    /// One microsecond.
    pub const MICROSECOND: SimTime = SimTime(1_000);
    /// One millisecond.
    pub const MILLISECOND: SimTime = SimTime(1_000_000);
    /// One second.
    pub const SECOND: SimTime = SimTime(1_000_000_000);
    /// The far future; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from integer nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from (possibly fractional) microseconds, rounding to the
    /// nearest nanosecond. Negative values clamp to zero.
    #[inline]
    pub fn from_us(us: f64) -> Self {
        if us <= 0.0 {
            SimTime::ZERO
        } else {
            SimTime((us * 1_000.0).round() as u64)
        }
    }

    /// Construct from integer microseconds.
    #[inline]
    pub const fn from_us_int(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Nanoseconds as a raw integer.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds as a float (the unit the paper reports in).
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction: `a.saturating_sub(b)` is zero when `b > a`.
    #[inline]
    pub const fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    #[inline]
    pub const fn checked_sub(self, rhs: SimTime) -> Option<SimTime> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Scale a duration by a float factor (used when deriving per-cluster
    /// parameter sets, e.g. NIC cycle costs scaled by clock ratio).
    #[inline]
    pub fn scale(self, factor: f64) -> SimTime {
        SimTime((self.0 as f64 * factor).round().max(0.0) as u64)
    }

    /// True if this is the zero time/duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(SimTime::from_ns(1_500).as_ns(), 1_500);
        assert_eq!(SimTime::from_us(1.5).as_ns(), 1_500);
        assert_eq!(SimTime::from_us_int(3).as_ns(), 3_000);
        assert!((SimTime::from_ns(2_750).as_us() - 2.75).abs() < 1e-12);
    }

    #[test]
    fn from_us_rounds_to_nearest_ns() {
        assert_eq!(SimTime::from_us(0.0004).as_ns(), 0);
        assert_eq!(SimTime::from_us(0.0006).as_ns(), 1);
        assert_eq!(SimTime::from_us(-3.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_us(2.0);
        let b = SimTime::from_us(0.5);
        assert_eq!(a + b, SimTime::from_us(2.5));
        assert_eq!(a - b, SimTime::from_us(1.5));
        assert_eq!(a * 3, SimTime::from_us(6.0));
        assert_eq!(a / 4, SimTime::from_us(0.5));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.checked_sub(b), Some(SimTime::from_us(1.5)));
        assert_eq!(b.checked_sub(a), None);
    }

    #[test]
    fn min_max_scale() {
        let a = SimTime::from_us(2.0);
        let b = SimTime::from_us(3.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.scale(1.5), SimTime::from_us(3.0));
        assert_eq!(a.scale(0.0), SimTime::ZERO);
    }

    #[test]
    fn sum_and_ordering() {
        let total: SimTime = [1.0, 2.0, 3.5].iter().map(|&us| SimTime::from_us(us)).sum();
        assert_eq!(total, SimTime::from_us(6.5));
        assert!(SimTime::from_ns(1) < SimTime::from_ns(2));
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(format!("{}", SimTime::from_us(5.6)), "5.600us");
        assert_eq!(format!("{:?}", SimTime::from_ns(123)), "0.123us");
    }
}
