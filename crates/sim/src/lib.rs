//! # nicbar-sim — deterministic discrete-event simulation engine
//!
//! This crate is the substrate under every interconnect model in the `nicbar`
//! workspace. It provides:
//!
//! * [`SimTime`] — a nanosecond-resolution virtual clock with convenient
//!   microsecond conversions (the paper reports all latencies in µs).
//! * [`Engine`] — a typed discrete-event scheduler. Events are ordered by a
//!   *content-based* key `(time, source, per-source count)`: per source,
//!   same-time events deliver in the order they were scheduled; across
//!   sources, by source id. Because the key is a pure function of the
//!   simulation's own causal history, every run is fully deterministic —
//!   bit-for-bit identical across reruns, scheduler implementations, and
//!   shard counts of the parallel engine.
//! * [`Component`] — the actor trait. NICs, hosts, buses and fabrics are all
//!   components that interact *only* through scheduled events, so the
//!   simulated concurrency is explicit and there is no hidden shared state.
//! * [`SimRng`] — a seeded counter-based RNG (ChaCha8). All randomness in a
//!   simulation flows from one seed, so identical seeds reproduce identical
//!   event traces bit-for-bit.
//! * [`Counters`] / [`Trace`] — cheap named statistics and an optional event
//!   trace ring used by tests to assert protocol behaviour (packet counts,
//!   ACK counts, retransmissions, ...).
//! * [`SpanEvent`] / [`FlightRecorder`] / [`Histogram`] — typed protocol
//!   events, per-operation phase breakdowns, and log2-bucketed latency
//!   histograms: the flight-recorder layer behind the `flight` binary's
//!   Chrome-trace export and breakdown tables. Disabled by default; one
//!   branch per emit site when off.
//!
//! * [`ParallelEngine`] — a rank-sharded conservative parallel executor: one
//!   built [`Engine`] split across worker threads by a [`ShardMap`], run in
//!   lookahead-bounded time windows, with results (counters, traces, causal
//!   netdump, final clock) *byte-identical* to the sequential engine at any
//!   shard count. [`ExecEngine`] wraps either flavour behind one API so
//!   harnesses pick an engine per run. See [`parallel`] for the protocol and
//!   the identity argument.
//! * [`Telemetry`] / [`EngineProf`] — the engine's *self*-observability: a
//!   typed metrics registry (counters / gauges / log2 histograms behind
//!   interned [`MetricId`]s) and the per-shard window profiler that the
//!   `engine_prof` bench binary turns into timelines and bottleneck
//!   attributions. Zero-cost unless armed with
//!   [`ParallelEngine::enable_prof`]. See [`telemetry`].
//!
//! ## Example
//!
//! ```
//! use nicbar_sim::{Component, ComponentId, Ctx, Engine, SimTime};
//!
//! enum Msg { Ping(u32), Pong(u32) }
//!
//! struct Player { peer: ComponentId, rallies: u32 }
//!
//! impl Component<Msg> for Player {
//!     fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
//!         match msg {
//!             Msg::Ping(n) if n > 0 => ctx.send(SimTime::from_us(1.0), self.peer, Msg::Pong(n - 1)),
//!             Msg::Pong(n) if n > 0 => ctx.send(SimTime::from_us(1.0), self.peer, Msg::Ping(n - 1)),
//!             _ => ctx.halt(),
//!         }
//!         self.rallies += 1;
//!     }
//! }
//!
//! let mut engine: Engine<Msg> = Engine::new(42);
//! let a = engine.reserve_id();
//! let b = engine.reserve_id();
//! engine.install(a, Player { peer: b, rallies: 0 });
//! engine.install(b, Player { peer: a, rallies: 0 });
//! engine.schedule_at(SimTime::ZERO, a, Msg::Ping(10));
//! engine.run();
//! assert_eq!(engine.now(), SimTime::from_us(10.0));
//! ```

#![warn(missing_docs)]

pub mod causal;
pub mod counters;
pub mod engine;
pub mod hist;
pub mod ledger;
pub mod parallel;
pub mod partition;
pub mod queue;
pub mod rng;
pub mod span;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use causal::{
    chain_to, find, CausalKind, CauseId, NetDump, PacketLog, PacketRecord, NO_KEY, NO_NODE,
};
pub use counters::{intern, CounterId, CounterSnapshot, Counters};
pub use engine::{Component, ComponentId, Ctx, Engine, RunOutcome};
pub use hist::{intern_hist, HistId, Histogram, Histograms};
pub use ledger::{Ledger, LedgerOp, LedgerRecord, Occ, Owner, OwnerKind, ResKind, NO_UNIT};
pub use parallel::{EngineSel, ExecEngine, ParallelEngine};
pub use partition::{node_shard, LatencyMatrix, PartitionSel, ShardMap};
pub use queue::{SchedulerKind, SpscRing};
pub use rng::SimRng;
pub use span::{FlightRecorder, Phase, SpanEvent, SpanSummary, NUM_PHASES};
pub use telemetry::{
    intern_metric, EngineProf, MetricId, MetricValue, ProfAttribution, ProfClock, ShardProf,
    ShardProfData, Telemetry, WindowRec,
};
pub use time::SimTime;
pub use trace::{Trace, TraceRecord};
