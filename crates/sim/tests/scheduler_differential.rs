//! Differential tests: the indexed 4-ary scheduler must be observationally
//! identical to the classic `BinaryHeap` scheduler it replaced — same
//! delivery order, same RNG stream consumption, same counters — and runs
//! must be bit-for-bit reproducible across re-executions.

use nicbar_sim::{counter_id, Component, ComponentId, Ctx, Engine, SchedulerKind, SimTime};
use proptest::prelude::*;

/// One recorded delivery: (virtual time in ns, receiver index, message tag).
type Delivery = (u64, usize, u64);

struct Msg {
    budget: u32,
    tag: u64,
}

/// Records every delivery it sees and fans out a pseudo-random number of
/// children, with delays, targets and tags all drawn from the simulation
/// RNG — so any divergence in delivery order immediately desynchronises the
/// RNG stream and cascades into a visibly different trace.
struct Recorder {
    index: usize,
    all: Vec<ComponentId>,
    log: Vec<Delivery>,
}

impl Component<Msg> for Recorder {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        self.log.push((ctx.now().as_ns(), self.index, msg.tag));
        ctx.count_id(counter_id!("diff.deliveries"), 1);
        if msg.budget == 0 {
            return;
        }
        let children = ctx.rng().below(3);
        for _ in 0..children {
            let delay = ctx.rng().below(50);
            let target = self.all[ctx.rng().below(self.all.len() as u64) as usize];
            let tag = ctx.rng().next_u64();
            ctx.send(
                SimTime::from_ns(delay),
                target,
                Msg {
                    budget: msg.budget - 1,
                    tag,
                },
            );
        }
    }
}

/// Run a seeded fan-out workload and return the merged, delivery-ordered
/// trace plus the counter report and the processed-event count.
fn run_workload(
    kind: SchedulerKind,
    seed: u64,
    n: usize,
    initial: &[(u64, usize, u32)],
) -> (Vec<Delivery>, Vec<(&'static str, u64)>, u64) {
    let mut engine: Engine<Msg> = Engine::with_scheduler(seed, kind);
    let ids: Vec<ComponentId> = (0..n).map(|_| engine.reserve_id()).collect();
    for (i, &id) in ids.iter().enumerate() {
        engine.install(
            id,
            Recorder {
                index: i,
                all: ids.clone(),
                log: Vec::new(),
            },
        );
    }
    for &(at_ns, target, budget) in initial {
        engine.schedule_at(
            SimTime::from_ns(at_ns),
            ids[target % n],
            Msg { budget, tag: at_ns },
        );
    }
    engine.run();
    // Merge per-component logs back into global delivery order. Each
    // component records in its own arrival order; a stable sort by time
    // cannot reconstruct same-time cross-component order, so instead tag
    // positions are compared per component — plus a global count check.
    let mut merged = Vec::new();
    for &id in &ids {
        let rec = engine
            .component_ref::<Recorder>(id)
            .expect("recorder installed");
        merged.extend(rec.log.iter().copied());
    }
    let counters: Vec<(&'static str, u64)> = engine.counters().iter().collect();
    (merged, counters, engine.events_processed())
}

proptest! {
    /// Randomized workloads deliver identically (per-component order, RNG
    /// stream, counters, event count) on all three queue implementations.
    #[test]
    fn schedulers_are_observationally_identical(
        seed in any::<u64>(),
        n in 1usize..8,
        initial in proptest::collection::vec((0u64..500, 0usize..8, 0u32..5), 1..6),
    ) {
        let a = run_workload(SchedulerKind::TimingWheel, seed, n, &initial);
        let b = run_workload(SchedulerKind::Indexed4, seed, n, &initial);
        let c = run_workload(SchedulerKind::ClassicBinaryHeap, seed, n, &initial);
        prop_assert_eq!(&a, &c);
        prop_assert_eq!(a, b);
    }
}

/// Same-time events must deliver in issue order (seq tie-break) on every
/// scheduler: a burst of zero-delay sends to one target arrives FIFO.
#[test]
fn same_time_events_deliver_in_issue_order() {
    struct Burst {
        sink: ComponentId,
    }
    struct Sink {
        seen: Vec<u64>,
    }
    enum M {
        Go,
        Tagged(u64),
    }
    impl Component<M> for Burst {
        fn handle(&mut self, _msg: M, ctx: &mut Ctx<'_, M>) {
            for tag in 0..64 {
                ctx.send(SimTime::ZERO, self.sink, M::Tagged(tag));
            }
        }
    }
    impl Component<M> for Sink {
        fn handle(&mut self, msg: M, _ctx: &mut Ctx<'_, M>) {
            if let M::Tagged(tag) = msg {
                self.seen.push(tag);
            }
        }
    }
    for kind in [
        SchedulerKind::TimingWheel,
        SchedulerKind::Indexed4,
        SchedulerKind::ClassicBinaryHeap,
    ] {
        let mut engine: Engine<M> = Engine::with_scheduler(7, kind);
        let sink = engine.reserve_id();
        let burst = engine.add(Burst { sink });
        engine.install(sink, Sink { seen: Vec::new() });
        engine.schedule_at(SimTime::ZERO, burst, M::Go);
        engine.run();
        let sink_ref = engine.component_ref::<Sink>(sink).expect("sink installed");
        assert_eq!(
            sink_ref.seen,
            (0..64).collect::<Vec<u64>>(),
            "{kind:?}: same-time burst must arrive in issue order"
        );
    }
}

/// Re-running the identical workload in a fresh process state (fresh
/// engine, same seed) reproduces the trace and the interned-counter report
/// bit for bit.
#[test]
fn reruns_are_bit_identical() {
    let initial = [(0, 0, 6), (120, 2, 5), (120, 1, 4), (300, 3, 6)];
    for kind in [
        SchedulerKind::TimingWheel,
        SchedulerKind::Indexed4,
        SchedulerKind::ClassicBinaryHeap,
    ] {
        let first = run_workload(kind, 0xD5EED, 5, &initial);
        for _ in 0..3 {
            let again = run_workload(kind, 0xD5EED, 5, &initial);
            assert_eq!(first, again, "{kind:?}: rerun diverged");
        }
    }
}

/// The counter report stays sorted by counter name even though interning
/// assigns dense ids in first-touch order.
#[test]
fn counter_report_is_name_ordered() {
    struct Toucher;
    impl Component<()> for Toucher {
        fn handle(&mut self, _msg: (), ctx: &mut Ctx<'_, ()>) {
            // Deliberately touched in non-alphabetical order.
            ctx.count_id(counter_id!("zz.last"), 3);
            ctx.count_id(counter_id!("aa.first"), 1);
            ctx.count_id(counter_id!("mm.middle"), 2);
        }
    }
    let mut engine: Engine<()> = Engine::new(1);
    let id = engine.add(Toucher);
    engine.schedule_at(SimTime::ZERO, id, ());
    engine.run();
    let names: Vec<&'static str> = engine.counters().iter().map(|(name, _)| name).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "counter report must be name-ordered");
    assert!(names.contains(&"aa.first") && names.contains(&"zz.last"));
}
