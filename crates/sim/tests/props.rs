//! Property tests for the engine: arbitrary schedules must be delivered in
//! `(time, insertion-seq)` order with nothing lost, and replays must be
//! identical.

use nicbar_sim::{Component, ComponentId, Ctx, Engine, SimTime};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Rec {
    id: u32,
}

struct Collector {
    seen: Vec<(SimTime, u32)>,
}

impl Component<Rec> for Collector {
    fn handle(&mut self, msg: Rec, ctx: &mut Ctx<'_, Rec>) {
        self.seen.push((ctx.now(), msg.id));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Externally injected events arrive sorted by (time, injection order),
    /// with every event delivered exactly once.
    #[test]
    fn delivery_order_is_time_then_insertion(
        times in prop::collection::vec(0u64..1_000, 1..200),
    ) {
        let mut engine: Engine<Rec> = Engine::new(0);
        let c = engine.add(Collector { seen: Vec::new() });
        for (i, &t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_ns(t), c, Rec { id: i as u32 });
        }
        engine.run();
        let seen = &engine.component_ref::<Collector>(c).unwrap().seen;
        prop_assert_eq!(seen.len(), times.len());
        // Expected: stable sort by time (stability = insertion order).
        let mut expect: Vec<(u64, u32)> =
            times.iter().enumerate().map(|(i, &t)| (t, i as u32)).collect();
        expect.sort_by_key(|&(t, _)| t);
        let got: Vec<(u64, u32)> = seen.iter().map(|&(t, i)| (t.as_ns(), i)).collect();
        prop_assert_eq!(got, expect);
    }

    /// Handler-relayed chains preserve per-sender FIFO and never lose
    /// events, whatever the delays.
    #[test]
    fn relayed_chains_preserve_fifo(
        delays in prop::collection::vec(0u64..50, 1..100),
    ) {
        struct Relay {
            sink: ComponentId,
            delays: Vec<u64>,
            next: usize,
        }
        impl Component<Rec> for Relay {
            fn handle(&mut self, msg: Rec, ctx: &mut Ctx<'_, Rec>) {
                ctx.send(SimTime::ZERO, self.sink, Rec { id: msg.id });
                if self.next < self.delays.len() {
                    let d = self.delays[self.next];
                    self.next += 1;
                    ctx.send_self(SimTime::from_ns(d), Rec { id: msg.id + 1 });
                }
            }
        }
        let mut engine: Engine<Rec> = Engine::new(0);
        let sink = engine.reserve_id();
        let relay = engine.reserve_id();
        engine.install(sink, Collector { seen: Vec::new() });
        engine.install(
            relay,
            Relay {
                sink,
                delays: delays.clone(),
                next: 0,
            },
        );
        engine.schedule_at(SimTime::ZERO, relay, Rec { id: 0 });
        engine.run();
        let got: Vec<u32> = engine
            .component_ref::<Collector>(sink)
            .unwrap()
            .seen
            .iter()
            .map(|&(_, i)| i)
            .collect();
        let expect: Vec<u32> = (0..=delays.len() as u32).collect();
        prop_assert_eq!(got, expect);
    }

    /// Two runs with the same seed and schedule are identical.
    #[test]
    fn replay_is_bit_identical(
        times in prop::collection::vec(0u64..1_000, 1..100),
        seed in 0u64..1_000,
    ) {
        let run = || {
            let mut engine: Engine<Rec> = Engine::new(seed);
            let c = engine.add(Collector { seen: Vec::new() });
            for (i, &t) in times.iter().enumerate() {
                engine.schedule_at(SimTime::from_ns(t), c, Rec { id: i as u32 });
            }
            engine.run();
            (
                engine.now(),
                engine.events_processed(),
                engine.component_ref::<Collector>(c).unwrap().seen.clone(),
            )
        };
        prop_assert_eq!(run(), run());
    }
}
