//! End-to-end tests of the MPI-like frontend: collectives, point-to-point
//! matching, mixed programs, loss, and misuse detection.

use nicbar_core::ReduceOp;
use nicbar_gm::GmParams;
use nicbar_mpi::{MpiOp, MpiProgram, MpiWorld};

#[test]
fn allreduce_sum_across_ranks() {
    let report = MpiWorld::new(8)
        .programs_from(|rank| {
            MpiProgram::new(vec![
                MpiOp::SetValue(rank as u64 + 1),
                MpiOp::Allreduce { op: ReduceOp::Sum },
                MpiOp::StoreResult,
            ])
        })
        .run();
    for rank in 0..8 {
        assert_eq!(report.results[rank], vec![36], "rank {rank}");
    }
}

#[test]
fn bcast_then_reduce_pipeline() {
    // Root broadcasts a seed; everyone computes rank-dependent work from it
    // and the max is reduced back.
    let report = MpiWorld::new(4)
        .programs_from(|rank| {
            let mut ops = vec![
                MpiOp::SetValue(if rank == 0 { 500 } else { 0 }),
                MpiOp::Bcast { root: 0 },
                MpiOp::StoreResult, // everyone logs 500
            ];
            // "Compute": contribute bcast result + rank via the registers.
            ops.push(MpiOp::SetValue(500 + rank as u64));
            ops.push(MpiOp::Allreduce { op: ReduceOp::Max });
            ops.push(MpiOp::StoreResult); // everyone logs 503
            MpiProgram::new(ops)
        })
        .run();
    for rank in 0..4 {
        assert_eq!(report.results[rank], vec![500, 503], "rank {rank}");
    }
}

#[test]
fn point_to_point_ring_with_barriers() {
    // Each rank sends to its right neighbour, receives from its left, with
    // barriers separating three rounds.
    let n = 6;
    let report = MpiWorld::new(n)
        .programs_from(|rank| {
            let right = (rank + 1) % n;
            let left = (rank + n - 1) % n;
            let mut ops = Vec::new();
            for round in 0..3u32 {
                ops.push(MpiOp::Send {
                    to: right,
                    bytes: 256,
                    tag: round,
                });
                ops.push(MpiOp::Recv {
                    from: left,
                    tag: round,
                });
                ops.push(MpiOp::Barrier);
            }
            MpiProgram::new(ops)
        })
        .run();
    assert!(report.makespan_us > 0.0);
}

#[test]
fn out_of_order_receives_are_buffered() {
    // Rank 0 sends tags 1,2,3 immediately; rank 1 receives them in reverse
    // order — the unexpected-message queue must hold the early ones.
    let p0 = MpiProgram::new(vec![
        MpiOp::Send {
            to: 1,
            bytes: 64,
            tag: 1,
        },
        MpiOp::Send {
            to: 1,
            bytes: 64,
            tag: 2,
        },
        MpiOp::Send {
            to: 1,
            bytes: 64,
            tag: 3,
        },
        MpiOp::Barrier,
    ]);
    let p1 = MpiProgram::new(vec![
        MpiOp::Compute { us: 100.0 }, // let everything arrive first
        MpiOp::Recv { from: 0, tag: 3 },
        MpiOp::Recv { from: 0, tag: 2 },
        MpiOp::Recv { from: 0, tag: 1 },
        MpiOp::Barrier,
    ]);
    let report = MpiWorld::new(2).with_programs(vec![p0, p1]).run();
    assert!(report.makespan_us >= 100.0);
}

#[test]
fn compute_phases_burn_simulated_time() {
    let report = MpiWorld::new(2)
        .programs_from(|_| MpiProgram::new(vec![MpiOp::Compute { us: 250.0 }, MpiOp::Barrier]))
        .run();
    assert!(
        report.makespan_us >= 250.0,
        "makespan {:.2} < compute time",
        report.makespan_us
    );
}

#[test]
fn repeated_collectives_reuse_epochs() {
    let iters = 50;
    let report = MpiWorld::new(8)
        .programs_from(|_| MpiProgram::new((0..iters).map(|_| MpiOp::Barrier).collect()))
        .run();
    // 8 ranks × 3 rounds × iters collective packets.
    let coll: u64 = report
        .counters
        .iter()
        .find(|(k, _)| k == "wire.coll")
        .map(|(_, v)| *v)
        .unwrap();
    assert_eq!(coll, 24 * iters as u64);
}

#[test]
fn programs_survive_packet_loss() {
    let report = MpiWorld::new(4)
        .with_drop_prob(0.03)
        .with_seed(17)
        .programs_from(|rank| {
            MpiProgram::new(vec![
                MpiOp::SetValue(1 << rank),
                MpiOp::Allreduce {
                    op: ReduceOp::BitOr,
                },
                MpiOp::StoreResult,
                MpiOp::Send {
                    to: (rank + 1) % 4,
                    bytes: 2048,
                    tag: 9,
                },
                MpiOp::Recv {
                    from: (rank + 3) % 4,
                    tag: 9,
                },
                MpiOp::Barrier,
            ])
        })
        .run();
    for rank in 0..4 {
        assert_eq!(report.results[rank], vec![0b1111], "rank {rank}");
    }
}

#[test]
fn nic_collectives_beat_host_loop_on_makespan() {
    // A barrier-heavy job finishes faster on the slower 9.1 cluster with
    // the NIC protocol than with the direct scheme.
    let job = |features| {
        MpiWorld::new(8)
            .with_params(GmParams::lanai_9_1())
            .with_features(features)
            .programs_from(|_| {
                MpiProgram::new(
                    (0..40)
                        .flat_map(|_| [MpiOp::Compute { us: 10.0 }, MpiOp::Barrier])
                        .collect(),
                )
            })
            .run()
            .makespan_us
    };
    let paper = job(nicbar_gm::CollFeatures::paper());
    let direct = job(nicbar_gm::CollFeatures::direct());
    assert!(
        paper < direct,
        "paper protocol makespan {paper:.1} should beat direct {direct:.1}"
    );
}

#[test]
#[should_panic(expected = "disagrees with rank 0")]
fn mismatched_collective_sequences_rejected() {
    let p0 = MpiProgram::new(vec![MpiOp::Barrier, MpiOp::Barrier]);
    let p1 = MpiProgram::new(vec![MpiOp::Barrier]);
    let _ = MpiWorld::new(2).with_programs(vec![p0, p1]).run();
}

#[test]
#[should_panic(expected = "deadlocked")]
fn unmatched_recv_deadlocks_loudly() {
    let p0 = MpiProgram::new(vec![MpiOp::Recv { from: 1, tag: 7 }]);
    let p1 = MpiProgram::new(vec![]);
    let _ = MpiWorld::new(2).with_programs(vec![p0, p1]).run();
}

#[test]
fn worlds_are_deterministic() {
    let run = || {
        MpiWorld::new(6)
            .with_seed(3)
            .programs_from(|rank| {
                MpiProgram::new(vec![
                    MpiOp::SetValue(rank as u64),
                    MpiOp::Allreduce { op: ReduceOp::Max },
                    MpiOp::StoreResult,
                    MpiOp::Barrier,
                ])
            })
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan_us, b.makespan_us);
    assert_eq!(a.results, b.results);
}

#[test]
fn nonblocking_overlap_beats_blocking() {
    // Exchange 16 KB with the neighbour while computing 100 µs. Blocking:
    // send+recv then compute (serialized). Nonblocking: post both, compute,
    // waitall (overlapped).
    let n = 2;
    let blocking = MpiWorld::new(n)
        .programs_from(|rank| {
            MpiProgram::new(vec![
                MpiOp::Send {
                    to: 1 - rank,
                    bytes: 16_384,
                    tag: 1,
                },
                MpiOp::Recv {
                    from: 1 - rank,
                    tag: 1,
                },
                MpiOp::Compute { us: 100.0 },
                MpiOp::Barrier,
            ])
        })
        .run()
        .makespan_us;
    let nonblocking = MpiWorld::new(n)
        .programs_from(|rank| {
            MpiProgram::new(vec![
                MpiOp::Isend {
                    to: 1 - rank,
                    bytes: 16_384,
                    tag: 1,
                },
                MpiOp::Irecv {
                    from: 1 - rank,
                    tag: 1,
                },
                MpiOp::Compute { us: 100.0 },
                MpiOp::Waitall,
                MpiOp::Barrier,
            ])
        })
        .run()
        .makespan_us;
    assert!(
        nonblocking < blocking - 10.0,
        "overlap missing: nonblocking {nonblocking:.1} vs blocking {blocking:.1}"
    );
}

#[test]
fn wait_on_specific_request() {
    // Rank 0 posts two Irecvs and waits on the *second* first.
    let p0 = MpiProgram::new(vec![
        MpiOp::Irecv { from: 1, tag: 10 }, // req 0
        MpiOp::Irecv { from: 1, tag: 20 }, // req 1
        MpiOp::Wait { req: 1 },
        MpiOp::Wait { req: 0 },
        MpiOp::Barrier,
    ]);
    let p1 = MpiProgram::new(vec![
        MpiOp::Send {
            to: 0,
            bytes: 64,
            tag: 20,
        },
        MpiOp::Compute { us: 50.0 },
        MpiOp::Send {
            to: 0,
            bytes: 64,
            tag: 10,
        },
        MpiOp::Barrier,
    ]);
    let report = MpiWorld::new(2).with_programs(vec![p0, p1]).run();
    assert!(report.makespan_us >= 50.0);
}

#[test]
fn irecv_matches_already_arrived_messages() {
    let p0 = MpiProgram::new(vec![
        MpiOp::Send {
            to: 1,
            bytes: 64,
            tag: 5,
        },
        MpiOp::Barrier,
    ]);
    let p1 = MpiProgram::new(vec![
        MpiOp::Compute { us: 200.0 }, // message lands during this
        MpiOp::Irecv { from: 0, tag: 5 },
        MpiOp::Wait { req: 0 },
        MpiOp::Barrier,
    ]);
    let report = MpiWorld::new(2).with_programs(vec![p0, p1]).run();
    // The Wait must not block at all: makespan ≈ compute + barrier.
    assert!(report.makespan_us < 250.0);
}

#[test]
#[should_panic(expected = "Wait on unposted request")]
fn wait_on_unposted_request_panics() {
    let p = MpiProgram::new(vec![MpiOp::Wait { req: 0 }]);
    let _ = MpiWorld::new(1).with_programs(vec![p]).run();
}

#[test]
fn alltoall_exchanges_personalized_rows() {
    let n = 5;
    let report = MpiWorld::new(n)
        .programs_from(|rank| {
            MpiProgram::new(vec![
                MpiOp::SetVector((0..n as u64).map(|j| 1000 * rank as u64 + j).collect()),
                MpiOp::Alltoall,
                MpiOp::StoreResult,
                MpiOp::Barrier,
            ])
        })
        .run();
    for me in 0..n {
        // Fold of the received row: sum_i (1000*i + me).
        let expect: u64 = (0..n as u64).map(|i| 1000 * i + me as u64).sum();
        assert_eq!(report.results[me], vec![expect], "rank {me}");
    }
}
