//! # nicbar-mpi — an MPI-like programming model over the NIC-based
//! collective protocol
//!
//! The paper's §9 plans to "incorporate this barrier algorithm into LA-MPI
//! to provide a more efficient barrier operation". This crate is that
//! integration, at simulation scale: a small message-passing programming
//! model whose collectives (`Barrier`, `Bcast`, `Allreduce`, `Allgather`)
//! lower onto the NIC-resident collective protocol, and whose
//! point-to-point operations use the GM send/receive path.
//!
//! Programs are rank-local operation lists executed with MPI's blocking
//! semantics by a deterministic interpreter:
//!
//! ```
//! use nicbar_mpi::{MpiOp, MpiProgram, MpiWorld};
//! use nicbar_core::ReduceOp;
//!
//! // Four ranks: contribute rank+1, allreduce-sum, and barrier twice.
//! let program = |rank: usize| MpiProgram::new(vec![
//!     MpiOp::SetValue(rank as u64 + 1),
//!     MpiOp::Allreduce { op: ReduceOp::Sum },
//!     MpiOp::StoreResult,
//!     MpiOp::Barrier,
//!     MpiOp::Barrier,
//! ]);
//! let world = MpiWorld::new(4).programs_from(program);
//! let report = world.run();
//! for rank in 0..4 {
//!     assert_eq!(report.results[rank], vec![10]); // 1+2+3+4
//! }
//! ```
//!
//! ## Semantics
//!
//! * Operations execute in order; collectives and `Recv` block, `Send` is
//!   buffered (returns immediately), `Compute` burns simulated time.
//! * Collective sequences must match across ranks (checked at build time,
//!   like a correct MPI program); each distinct collective *signature*
//!   (kind + root/op) gets its own NIC group, and repeated uses ride the
//!   protocol's epoch machinery.
//! * `Recv { from, tag }` matches by sender and tag; early arrivals are
//!   buffered (MPI's unexpected-message queue).

#![warn(missing_docs)]

mod interp;
mod world;

pub use interp::{MpiOp, MpiProgram};
pub use world::{MpiReport, MpiWorld};
