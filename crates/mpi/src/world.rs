//! World assembly: validate programs, allocate collective groups, build
//! the simulated cluster, run to completion.

use crate::interp::{CollSig, MpiProc, MpiProgram};
use nicbar_core::{Algorithm, GroupSpec, PaperCollective, ReduceOp};
use nicbar_gm::{CollFeatures, GmApp, GmCluster, GmClusterSpec, GmParams, GroupId, NicCollective};
use nicbar_net::NodeId;
use nicbar_sim::{RunOutcome, SimTime};
use std::collections::BTreeMap;

/// A world of `n` ranks with one program each.
pub struct MpiWorld {
    n: usize,
    params: GmParams,
    features: CollFeatures,
    algo: Algorithm,
    seed: u64,
    drop_prob: f64,
    programs: Vec<MpiProgram>,
}

/// The outcome of a world run.
#[derive(Clone, Debug)]
pub struct MpiReport {
    /// Per-rank `StoreResult` logs.
    pub results: Vec<Vec<u64>>,
    /// Per-rank completion times (µs).
    pub finish_us: Vec<f64>,
    /// Wall-clock of the whole job in simulated µs (last rank to finish).
    pub makespan_us: f64,
    /// Final engine counters.
    pub counters: Vec<(String, u64)>,
}

impl MpiWorld {
    /// An `n`-rank world on the LANai-XP cluster with the paper's protocol.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "empty world");
        MpiWorld {
            n,
            params: GmParams::lanai_xp(),
            features: CollFeatures::paper(),
            algo: Algorithm::Dissemination,
            seed: 0x4D50,
            drop_prob: 0.0,
            programs: Vec::new(),
        }
    }

    /// Replace the cluster parameter set.
    pub fn with_params(mut self, params: GmParams) -> Self {
        self.params = params;
        self
    }

    /// Replace the collective feature set (ablation studies).
    pub fn with_features(mut self, features: CollFeatures) -> Self {
        self.features = features;
        self
    }

    /// Replace the barrier algorithm.
    pub fn with_algorithm(mut self, algo: Algorithm) -> Self {
        self.algo = algo;
        self
    }

    /// Replace the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Inject fabric loss.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Provide each rank's program from a generator.
    pub fn programs_from(mut self, f: impl Fn(usize) -> MpiProgram) -> Self {
        self.programs = (0..self.n).map(f).collect();
        self
    }

    /// Provide explicit per-rank programs.
    pub fn with_programs(mut self, programs: Vec<MpiProgram>) -> Self {
        assert_eq!(programs.len(), self.n, "one program per rank");
        self.programs = programs;
        self
    }

    /// Run the world to completion.
    ///
    /// # Panics
    /// Panics if programs were not provided, if ranks disagree on the
    /// collective sequence, or if the job deadlocks (e.g. a `Recv` with no
    /// matching `Send`).
    pub fn run(self) -> MpiReport {
        assert_eq!(
            self.programs.len(),
            self.n,
            "programs not provided (use programs_from / with_programs)"
        );
        // MPI correctness: every rank must issue the same collectives in the
        // same order.
        let reference = self.programs[0].coll_signature();
        for (rank, p) in self.programs.iter().enumerate().skip(1) {
            assert_eq!(
                p.coll_signature(),
                reference,
                "rank {rank} disagrees with rank 0 on the collective sequence"
            );
        }
        // Allocate one group per distinct signature, in first-use order.
        // BTreeMap, not HashMap: `groups.iter()` below builds each rank's
        // GroupSpec list in map order, which must be deterministic.
        let mut groups: BTreeMap<CollSig, GroupId> = BTreeMap::new();
        let mut reduce_ops: BTreeMap<CollSig, ReduceOp> = BTreeMap::new();
        for (i, op) in self.programs[0].ops.iter().enumerate() {
            if let Some(sig) = CollSig::of(op) {
                let next =
                    GroupId(u32::try_from(groups.len()).expect("group count exceeds u32") + 0x100);
                groups.entry(sig).or_insert(next);
                if let crate::interp::MpiOp::Allreduce { op } = op {
                    reduce_ops.entry(sig).or_insert(*op);
                }
                let _ = i;
            }
        }

        let members: Vec<NodeId> = (0..self.n).map(NodeId).collect();
        let timeout = self.params.coll_timeout;
        let spec = GmClusterSpec::new(self.params, self.n)
            .with_seed(self.seed)
            .with_drop_prob(self.drop_prob)
            .with_features(self.features);

        let mut apps: Vec<Box<dyn GmApp>> = Vec::new();
        let mut colls: Vec<Box<dyn NicCollective>> = Vec::new();
        for (rank, program) in self.programs.into_iter().enumerate() {
            let specs: Vec<GroupSpec> = groups
                .iter()
                .map(|(sig, &gid)| GroupSpec {
                    id: gid,
                    members: members.clone().into(),
                    my_rank: rank,
                    op: sig.group_op(reduce_ops.get(sig).copied()),
                    algo: self.algo,
                    timeout,
                })
                .collect();
            apps.push(Box::new(MpiProc::new(
                rank,
                members.clone(),
                program,
                groups.clone(),
            )));
            colls.push(Box::new(PaperCollective::new(NodeId(rank), specs)));
        }

        let mut cluster = GmCluster::build(spec, apps, colls);
        let outcome = cluster.run_until(SimTime::from_us(600_000_000.0));
        assert_eq!(outcome, RunOutcome::Idle, "world did not drain");

        let mut results = Vec::with_capacity(self.n);
        let mut finish_us = Vec::with_capacity(self.n);
        for rank in 0..self.n {
            let proc = cluster.app_ref::<MpiProc>(rank);
            let finish = proc
                .finish
                .unwrap_or_else(|| panic!("rank {rank} deadlocked (blocked op never completed)"));
            results.push(proc.results.clone());
            finish_us.push(finish.as_us());
        }
        let makespan_us = finish_us.iter().copied().fold(0.0, f64::max);
        let counters = cluster
            .engine
            .counters()
            .iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        MpiReport {
            results,
            finish_us,
            makespan_us,
            counters,
        }
    }
}
