//! The rank-local program interpreter (a `GmApp`).

use nicbar_core::{GroupOp, ReduceOp};
use nicbar_gm::{GmApi, GmApp, GroupId, MsgId, MsgTag};
use nicbar_net::NodeId;
use nicbar_sim::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// One operation of an MPI-like program.
#[derive(Clone, Debug, PartialEq)]
pub enum MpiOp {
    /// Set the value register (the operand contributed to the next
    /// collective).
    SetValue(u64),
    /// Push the last collective's result onto the results log.
    StoreResult,
    /// Synchronize all ranks (NIC-based barrier).
    Barrier,
    /// Broadcast the root's value register to everyone (NIC-based binomial
    /// tree); the result lands in the result register.
    Bcast {
        /// Root rank.
        root: usize,
    },
    /// Combine every rank's value register (NIC-based butterfly).
    Allreduce {
        /// Combine operator.
        op: ReduceOp,
    },
    /// Gather every rank's value register; the result register receives the
    /// wrapping sum of all contributions (the protocol's fold; per-rank
    /// vectors live NIC-side).
    Allgather,
    /// Set the vector register (the per-destination row for `Alltoall`).
    SetVector(Vec<u64>),
    /// Personalized all-to-all exchange of the vector register (Bruck);
    /// the result register receives the wrapping sum of the received row.
    Alltoall,
    /// Post a buffered send of `bytes` to rank `to` with `tag`.
    Send {
        /// Destination rank.
        to: usize,
        /// Message size.
        bytes: u32,
        /// Match tag.
        tag: u32,
    },
    /// Block until a message from rank `from` with `tag` arrives.
    Recv {
        /// Source rank.
        from: usize,
        /// Match tag.
        tag: u32,
    },
    /// Post a nonblocking send; completes (for `Wait`) when the message is
    /// fully acknowledged. Requests are numbered in issue order per rank.
    Isend {
        /// Destination rank.
        to: usize,
        /// Message size.
        bytes: u32,
        /// Match tag.
        tag: u32,
    },
    /// Post a nonblocking receive for a message from `from` with `tag`.
    Irecv {
        /// Source rank.
        from: usize,
        /// Match tag.
        tag: u32,
    },
    /// Block until request `req` (issue-order index) completes.
    Wait {
        /// Request index.
        req: usize,
    },
    /// Block until every posted request completes.
    Waitall,
    /// Busy the host for `us` microseconds (a compute phase).
    Compute {
        /// Duration in µs.
        us: f64,
    },
}

/// The collective signature — programs must agree on these across ranks,
/// and each signature gets its own NIC group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) enum CollSig {
    Barrier,
    Bcast { root: usize },
    Allreduce { op: ReduceKey },
    Allgather,
    Alltoall,
}

/// Hashable, orderable stand-in for [`ReduceOp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) enum ReduceKey {
    Sum,
    Min,
    Max,
    BitOr,
}

impl From<ReduceOp> for ReduceKey {
    fn from(op: ReduceOp) -> Self {
        match op {
            ReduceOp::Sum => ReduceKey::Sum,
            ReduceOp::Min => ReduceKey::Min,
            ReduceOp::Max => ReduceKey::Max,
            ReduceOp::BitOr => ReduceKey::BitOr,
        }
    }
}

impl CollSig {
    pub(crate) fn of(op: &MpiOp) -> Option<CollSig> {
        match op {
            MpiOp::Barrier => Some(CollSig::Barrier),
            MpiOp::Bcast { root } => Some(CollSig::Bcast { root: *root }),
            MpiOp::Allreduce { op } => Some(CollSig::Allreduce { op: (*op).into() }),
            MpiOp::Allgather => Some(CollSig::Allgather),
            MpiOp::Alltoall => Some(CollSig::Alltoall),
            _ => None,
        }
    }

    pub(crate) fn group_op(&self, reduce: Option<ReduceOp>) -> GroupOp {
        match self {
            CollSig::Barrier => GroupOp::Barrier,
            CollSig::Bcast { root } => GroupOp::Broadcast { root: *root },
            CollSig::Allreduce { .. } => GroupOp::Allreduce {
                op: reduce.expect("reduce op for allreduce signature"),
            },
            CollSig::Allgather => GroupOp::Allgather,
            CollSig::Alltoall => GroupOp::Alltoall,
        }
    }
}

/// A rank-local program.
#[derive(Clone, Debug, PartialEq)]
pub struct MpiProgram {
    /// The operations, executed in order.
    pub ops: Vec<MpiOp>,
}

impl MpiProgram {
    /// Wrap an operation list.
    pub fn new(ops: Vec<MpiOp>) -> Self {
        MpiProgram { ops }
    }

    /// The program's collective signature sequence (for cross-rank
    /// compatibility checking).
    pub(crate) fn coll_signature(&self) -> Vec<CollSig> {
        self.ops.iter().filter_map(CollSig::of).collect()
    }
}

/// What the interpreter is currently blocked on.
enum Waiting {
    Nothing,
    Collective(GroupId),
    Recv { from: usize, tag: u32 },
    WaitReq(usize),
    WaitAll,
    Compute,
    Finished,
}

/// A nonblocking request.
struct Request {
    done: bool,
    /// For Isend: the message id to match in `on_send_done`.
    send_msg: Option<MsgId>,
    /// For Irecv: the (from, tag) to match on arrival.
    recv_match: Option<(usize, u32)>,
}

/// The per-rank interpreter, driven as a `GmApp`.
pub(crate) struct MpiProc {
    rank: usize,
    members: Vec<NodeId>,
    ops: Vec<MpiOp>,
    pc: usize,
    /// Value register (collective operand).
    value: u64,
    /// Vector register (alltoall operand).
    vector: Vec<u64>,
    /// Result register (last collective result).
    result: u64,
    /// Results log (`StoreResult`).
    pub(crate) results: Vec<u64>,
    /// Group id per collective signature.
    groups: BTreeMap<CollSig, GroupId>,
    state: Waiting,
    /// Nonblocking requests in issue order.
    requests: Vec<Request>,
    /// Early arrivals: (from_rank, tag) → lengths.
    unexpected: BTreeMap<(usize, u32), VecDeque<u32>>,
    /// Completion time.
    pub(crate) finish: Option<SimTime>,
}

impl MpiProc {
    pub(crate) fn new(
        rank: usize,
        members: Vec<NodeId>,
        program: MpiProgram,
        groups: BTreeMap<CollSig, GroupId>,
    ) -> Self {
        MpiProc {
            rank,
            members,
            ops: program.ops,
            pc: 0,
            value: 0,
            vector: Vec::new(),
            result: 0,
            results: Vec::new(),
            groups,
            state: Waiting::Nothing,
            requests: Vec::new(),
            unexpected: BTreeMap::new(),
            finish: None,
        }
    }

    fn rank_of(&self, node: NodeId) -> usize {
        self.members
            .iter()
            .position(|&m| m == node)
            .expect("message from outside the world")
    }

    /// Execute ops until one blocks or the program ends.
    fn advance(&mut self, api: &mut GmApi<'_>) {
        loop {
            if self.pc >= self.ops.len() {
                self.state = Waiting::Finished;
                if self.finish.is_none() {
                    self.finish = Some(api.now());
                }
                return;
            }
            let op = self.ops[self.pc].clone();
            self.pc += 1;
            match op {
                MpiOp::SetValue(v) => {
                    self.value = v;
                }
                MpiOp::SetVector(v) => {
                    self.vector = v;
                }
                MpiOp::StoreResult => {
                    self.results.push(self.result);
                }
                MpiOp::Barrier
                | MpiOp::Bcast { .. }
                | MpiOp::Allreduce { .. }
                | MpiOp::Allgather => {
                    let sig = CollSig::of(&op).expect("collective op");
                    let gid = *self.groups.get(&sig).expect("group allocated at build");
                    api.collective(gid, self.value);
                    self.state = Waiting::Collective(gid);
                    return;
                }
                MpiOp::Alltoall => {
                    let gid = *self
                        .groups
                        .get(&CollSig::Alltoall)
                        .expect("group allocated at build");
                    assert_eq!(
                        self.vector.len(),
                        self.members.len(),
                        "Alltoall needs a vector register with one value per rank (SetVector)"
                    );
                    api.collective_vec(gid, self.vector.clone());
                    self.state = Waiting::Collective(gid);
                    return;
                }
                MpiOp::Send { to, bytes, tag } => {
                    assert_ne!(to, self.rank, "self-send is not supported");
                    api.send(self.members[to], bytes.max(1), MsgTag(tag));
                }
                MpiOp::Recv { from, tag } => {
                    if let Some(q) = self.unexpected.get_mut(&(from, tag)) {
                        if q.pop_front().is_some() {
                            continue; // already here: consume and move on
                        }
                    }
                    self.state = Waiting::Recv { from, tag };
                    return;
                }
                MpiOp::Compute { us } => {
                    api.set_timer(SimTime::from_us(us));
                    self.state = Waiting::Compute;
                    return;
                }
                MpiOp::Isend { to, bytes, tag } => {
                    assert_ne!(to, self.rank, "self-send is not supported");
                    let id = api.send(self.members[to], bytes.max(1), MsgTag(tag));
                    self.requests.push(Request {
                        done: false,
                        send_msg: Some(id),
                        recv_match: None,
                    });
                }
                MpiOp::Irecv { from, tag } => {
                    // Already-arrived messages satisfy the request at post
                    // time (MPI's unexpected-message queue).
                    let done = self
                        .unexpected
                        .get_mut(&(from, tag))
                        .map(|q| q.pop_front().is_some())
                        .unwrap_or(false);
                    self.requests.push(Request {
                        done,
                        send_msg: None,
                        recv_match: (!done).then_some((from, tag)),
                    });
                }
                MpiOp::Wait { req } => {
                    let r = self
                        .requests
                        .get(req)
                        .unwrap_or_else(|| panic!("Wait on unposted request {req}"));
                    if !r.done {
                        self.state = Waiting::WaitReq(req);
                        return;
                    }
                }
                MpiOp::Waitall => {
                    if self.requests.iter().any(|r| !r.done) {
                        self.state = Waiting::WaitAll;
                        return;
                    }
                }
            }
        }
    }
}

impl MpiProc {
    /// After a request completed, resume if the blocked wait is satisfied.
    fn maybe_resume(&mut self, api: &mut GmApi<'_>) {
        let ready = match self.state {
            Waiting::WaitReq(idx) => self.requests[idx].done,
            Waiting::WaitAll => self.requests.iter().all(|r| r.done),
            _ => false,
        };
        if ready {
            self.state = Waiting::Nothing;
            self.advance(api);
        }
    }
}

impl GmApp for MpiProc {
    fn on_start(&mut self, api: &mut GmApi<'_>) {
        api.post_recv(64);
        self.advance(api);
    }

    fn on_recv(&mut self, api: &mut GmApi<'_>, src: NodeId, tag: MsgTag, len: u32) {
        let from = self.rank_of(src);
        if let Waiting::Recv {
            from: want_from,
            tag: want_tag,
        } = self.state
        {
            if from == want_from && tag.0 == want_tag {
                self.state = Waiting::Nothing;
                self.advance(api);
                return;
            }
        }
        // Match the oldest posted, incomplete Irecv for this (from, tag).
        if let Some(r) = self
            .requests
            .iter_mut()
            .find(|r| !r.done && r.recv_match == Some((from, tag.0)))
        {
            r.done = true;
            r.recv_match = None;
            self.maybe_resume(api);
            return;
        }
        self.unexpected
            .entry((from, tag.0))
            .or_default()
            .push_back(len);
    }

    fn on_coll_done(&mut self, api: &mut GmApi<'_>, group: GroupId, _epoch: u64, value: u64) {
        match self.state {
            Waiting::Collective(gid) => {
                assert_eq!(gid, group, "completion for the wrong collective");
                self.result = value;
                self.state = Waiting::Nothing;
                self.advance(api);
            }
            _ => panic!("unexpected collective completion"),
        }
    }

    fn on_timer(&mut self, api: &mut GmApi<'_>) {
        match self.state {
            Waiting::Compute => {
                self.state = Waiting::Nothing;
                self.advance(api);
            }
            _ => panic!("unexpected timer"),
        }
    }

    fn on_send_done(&mut self, api: &mut GmApi<'_>, msg_id: MsgId) {
        // Blocking Sends are buffered (nothing to do); Isends complete
        // their request.
        if let Some(r) = self
            .requests
            .iter_mut()
            .find(|r| r.send_msg == Some(msg_id))
        {
            r.done = true;
            self.maybe_resume(api);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_extract_collectives_only() {
        let p = MpiProgram::new(vec![
            MpiOp::SetValue(1),
            MpiOp::Barrier,
            MpiOp::Send {
                to: 1,
                bytes: 8,
                tag: 0,
            },
            MpiOp::Allreduce { op: ReduceOp::Max },
            MpiOp::Bcast { root: 2 },
        ]);
        assert_eq!(
            p.coll_signature(),
            vec![
                CollSig::Barrier,
                CollSig::Allreduce { op: ReduceKey::Max },
                CollSig::Bcast { root: 2 },
            ]
        );
    }
}
