//! # nicbar — NIC-based collective message passing (IPPS 2004 reproduction)
//!
//! Facade crate re-exporting the full `nicbar` workspace: a reproduction of
//! *"Efficient and Scalable Barrier over Quadrics and Myrinet with a New
//! NIC-Based Collective Message Passing Protocol"* (Yu, Buntinas, Graham,
//! Panda — IPPS 2004).
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! system inventory and per-experiment index.

#![warn(missing_docs)]

pub use nicbar_algos as algos;
pub use nicbar_core as core;
pub use nicbar_elan as elan;
pub use nicbar_gm as gm;
pub use nicbar_model as model;
pub use nicbar_mpi as mpi;
pub use nicbar_net as net;
pub use nicbar_sim as sim;

/// Commonly used items, for examples and downstream quickstarts.
pub mod prelude {
    pub use nicbar_core::{
        elan_gsync_barrier, elan_hw_barrier, elan_nic_barrier, gm_host_barrier, gm_nic_barrier,
        Algorithm, BarrierStats, GroupOp, GroupSpec, PaperCollective, ReduceOp, RunCfg,
    };
    pub use nicbar_elan::ElanParams;
    pub use nicbar_gm::{CollFeatures, GmParams, GroupId};
    pub use nicbar_model::{fit, BarrierModel};
    pub use nicbar_mpi::{MpiOp, MpiProgram, MpiWorld};
    pub use nicbar_net::NodeId;
    pub use nicbar_sim::{SimRng, SimTime};
}
