#!/usr/bin/env bash
# Full local gate: release build, workspace tests, clippy with warnings
# denied, formatting, and the observability zero-overhead gate. Run from
# anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

# Formatting covers our crates only: vendor/* members are upstream code we
# keep byte-identical, and rustfmt's `ignore` option is nightly-only.
fmt_pkgs=()
for manifest in crates/*/Cargo.toml; do
    fmt_pkgs+=(-p "$(grep -m1 '^name' "$manifest" | sed 's/.*"\(.*\)"/\1/')")
done
cargo fmt "${fmt_pkgs[@]}" --check

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Static analysis: nicbar-lint enforces the determinism and protocol
# invariants (rule catalogue in DESIGN.md). The fixture self-test runs
# first so a broken rule cannot silently pass the workspace; the workspace
# scan then fails on any finding not covered by an audited lint.toml entry.
cargo run --release -q -p nicbar-lint -- --fixtures
cargo run --release -q -p nicbar-lint

# Zero-overhead gate: with the flight recorder and trace ring disabled,
# engine throughput must stay within 5% of the saved baseline. Skipped if
# the baseline has never been generated (run the full engine_sweep once).
if [ -f results/engine_sweep.json ]; then
    cargo run --release -p nicbar-bench --bin engine_sweep -- --quick
else
    echo "check.sh: no results/engine_sweep.json baseline, skipping --quick gate"
fi

echo "check.sh: all green"
