#!/usr/bin/env bash
# Full local gate: release build, workspace tests, clippy with warnings
# denied, formatting, and the observability zero-overhead gate. Run from
# anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

# Formatting covers our crates only: vendor/* members are upstream code we
# keep byte-identical, and rustfmt's `ignore` option is nightly-only.
fmt_pkgs=()
for manifest in crates/*/Cargo.toml; do
    fmt_pkgs+=(-p "$(grep -m1 '^name' "$manifest" | sed 's/.*"\(.*\)"/\1/')")
done
cargo fmt "${fmt_pkgs[@]}" --check

cargo build --release --workspace
cargo build --examples --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Static analysis: nicbar-lint enforces the determinism and protocol
# invariants (rule catalogue in DESIGN.md). The fixture self-test runs
# first so a broken rule cannot silently pass the workspace; the workspace
# scan then fails on any finding not covered by an audited lint.toml entry.
cargo run --release -q -p nicbar-lint -- --fixtures
cargo run --release -q -p nicbar-lint

# Zero-overhead gate: with the flight recorder and trace ring disabled,
# engine throughput must stay within 5% of the saved baseline. Skipped if
# the baseline has never been generated (run the full engine_sweep once).
# The quick gate also asserts the parallel engine at one shard stays
# within 5% of the sequential engine on the fig5 figure point.
if [ -f results/engine_sweep.json ]; then
    cargo run --release -p nicbar-bench --bin engine_sweep -- --quick
else
    echo "check.sh: no results/engine_sweep.json baseline, skipping --quick gate"
fi

# Parallel-engine parity smoke: the rank-sharded engine must reproduce the
# sequential run byte-for-byte — counters, spans, causal packet records and
# barrier latencies — at 2..8 shards on both substrates, with loss, and the
# one-shard Auto case must take the sequential fast path
# (tests/parallel_parity.rs; release so the windowed loop matches the
# shipped hot path).
cargo test --release -q --test parallel_parity
echo "check.sh: parallel engine parity OK"

# Causal-observability smoke: why-slow on an 8-node lossy GM sim must
# produce a non-empty critical path for every barrier, attribute >= 95%
# of each span's wall time to its edges, and drop zero netdump records
# (--check exits nonzero otherwise).
cargo run --release -q -p nicbar-bench --bin why-slow -- \
    --nodes 8 --drop 0.02 --seed 7 --check > /dev/null
echo "check.sh: why-slow smoke OK"

# Allocation gate: a steady-state NIC barrier must not touch the heap.
# The counting-allocator test runs in its own binary (process-wide
# allocator, single test), release mode so the measurement matches the
# shipped hot path.
cargo test --release -q --test alloc_steady
echo "check.sh: allocation gate OK"

# Scalability smoke: the quick sweep (sub-sampled grid up to the 65,536-node
# gm NIC-DS point) must complete, both dissemination curves must fit the
# ceil(log2 N) staircase, and the engine-comparison series must reproduce
# the sequential latency bit-for-bit under sharding. On hosts with >= 8
# hardware threads fig_scale additionally asserts the 8-shard parallel
# engine beats sequential by >= 3x on the 4096-node gm point (skipped with
# a visible message on smaller hosts) — fig_scale exits nonzero otherwise.
cargo run --release -q -p nicbar-bench --bin fig_scale -- --quick > /dev/null
echo "check.sh: fig_scale smoke OK"

# Tracked perf-trajectory artifacts: quick fig5/fig7 sweeps regenerate
# BENCH_fig5.json and BENCH_fig7.json at the repo root (median + p99 per
# node count, run manifest embedded). BENCH_scale.json was refreshed by
# the fig_scale smoke above.
cargo run --release -q -p nicbar-bench --bin fig5 -- --quick > /dev/null
cargo run --release -q -p nicbar-bench --bin fig7 -- --quick > /dev/null
for f in BENCH_fig5.json BENCH_fig7.json BENCH_scale.json; do
    [ -s "$f" ] || { echo "check.sh: missing $f" >&2; exit 1; }
    grep -q '"manifest"' "$f" || { echo "check.sh: $f lacks a manifest" >&2; exit 1; }
done
echo "check.sh: BENCH artifacts OK"

echo "check.sh: all green"
