#!/usr/bin/env bash
# Full local gate: release build, workspace tests, clippy with warnings
# denied, formatting, static analysis, protocol model checking, and the
# observability zero-overhead gate. Run from anywhere inside the repo.
#
# Every gate runs under the `gate` wrapper, which times it and prints a
# per-gate wall-time summary at the end — so when the gate gets slow, the
# summary names the culprit instead of leaving it to guesswork.
set -euo pipefail
cd "$(dirname "$0")/.."

GATE_NAMES=()
GATE_SECS=()
gate() {
    local name="$1"
    shift
    local t0 t1
    t0=$(date +%s%N)
    "$@"
    t1=$(date +%s%N)
    GATE_NAMES+=("$name")
    GATE_SECS+=("$(printf '%d.%03d' $(((t1 - t0) / 1000000000)) $(((t1 - t0) / 1000000 % 1000)))")
}

# Formatting covers our crates only: vendor/* members are upstream code we
# keep byte-identical, and rustfmt's `ignore` option is nightly-only.
fmt_gate() {
    local fmt_pkgs=()
    for manifest in crates/*/Cargo.toml; do
        fmt_pkgs+=(-p "$(grep -m1 '^name' "$manifest" | sed 's/.*"\(.*\)"/\1/')")
    done
    cargo fmt "${fmt_pkgs[@]}" --check
}
gate "fmt" fmt_gate

gate "build" cargo build --release --workspace
gate "build-examples" cargo build --examples --workspace
gate "test" cargo test -q --workspace
gate "clippy" cargo clippy --workspace --all-targets -- -D warnings

# Static analysis: nicbar-lint enforces the determinism and protocol
# invariants (rule catalogue in DESIGN.md). The fixture self-test runs
# first so a broken rule cannot silently pass the workspace; the workspace
# scan then fails on any finding not covered by an audited lint.toml entry
# (and fails on stale entries covering nothing).
gate "lint-fixtures" cargo run --release -q -p nicbar-lint -- --fixtures
gate "lint-scan" cargo run --release -q -p nicbar-lint

# Protocol model checking: nicbar-verify drives the real PaperCollective
# through the exhaustive interleaving space of the adversarial network
# (loss, duplication, reorder, unbounded delay) for DS and PE barriers on
# both substrates and proves safety invariants, deadlock-freedom and NACK
# liveness on every configuration of the gate matrix.
gate "verify-matrix" cargo run --release -q -p nicbar-verify -- --check

# Counterexample pipeline: an injected protocol bug must yield a minimal
# counterexample whose netdump trace replays through why-slow.
verify_counterexample_gate() {
    local tmp
    tmp=$(mktemp -d)
    if ! cargo run --release -q -p nicbar-verify -- \
        --nodes 2 --substrate gm --inject skip-payload-record \
        --expect-violation --trace-out "$tmp/cex.jsonl" > /dev/null 2>&1; then
        echo "check.sh: injected bug was NOT caught by nicbar-verify" >&2
        rm -rf "$tmp"
        return 1
    fi
    if ! cargo run --release -q -p nicbar-bench --bin why-slow -- \
        --replay "$tmp/cex.jsonl" > /dev/null; then
        echo "check.sh: counterexample trace failed to replay through why-slow" >&2
        rm -rf "$tmp"
        return 1
    fi
    rm -rf "$tmp"
}
gate "verify-counterexample" verify_counterexample_gate
echo "check.sh: protocol model checking OK"

# Zero-overhead gate: with the flight recorder and trace ring disabled,
# engine throughput must stay within 5% of the saved baseline. Skipped if
# the baseline has never been generated (run the full engine_sweep once).
# The quick gate also asserts the parallel engine at one shard stays
# within 5% of the sequential engine on the fig5 figure point.
if [ -f results/engine_sweep.json ]; then
    gate "engine-sweep-quick" cargo run --release -p nicbar-bench --bin engine_sweep -- --quick
else
    echo "check.sh: no results/engine_sweep.json baseline, skipping --quick gate"
fi

# Engine self-profiler smoke: a profiled 2-shard 64-node run must account
# for >= 95% of worker wall time and name a dominant bottleneck
# (engine_prof --check exits nonzero otherwise). On hosts with >= 8
# hardware threads the full gate also profiles 8 shards x 4096 nodes and
# asserts the profiler-DISABLED path stays within 2 percentage points of
# the committed one-shard overhead baseline in results/engine_sweep.json.
engine_prof_quick_gate() {
    cargo run --release -q -p nicbar-bench --bin engine_prof -- --quick --check > /dev/null
}
gate "engine-prof-quick" engine_prof_quick_gate
echo "check.sh: engine_prof smoke OK"
if [ "$(nproc 2>/dev/null || echo 1)" -ge 8 ] && [ -f results/engine_sweep.json ]; then
    engine_prof_full_gate() {
        cargo run --release -q -p nicbar-bench --bin engine_prof -- --check > /dev/null
    }
    gate "engine-prof-full" engine_prof_full_gate
    echo "check.sh: engine_prof full gate OK"
else
    echo "check.sh: < 8 hardware threads or no baseline, skipping full engine_prof gate"
fi

# Parallel-engine parity smoke: the rank-sharded engine must reproduce the
# sequential run byte-for-byte — counters, spans, causal packet records and
# barrier latencies — at 2..8 shards on both substrates, with loss, and the
# one-shard Auto case must take the sequential fast path
# (tests/parallel_parity.rs; release so the windowed loop matches the
# shipped hot path).
gate "parallel-parity" cargo test --release -q --test parallel_parity
echo "check.sh: parallel engine parity OK"

# Causal-observability smoke: why-slow on an 8-node lossy GM sim must
# produce a non-empty critical path for every barrier, attribute >= 95%
# of each span's wall time to its edges, and drop zero netdump records
# (--check exits nonzero otherwise).
why_slow_gate() {
    cargo run --release -q -p nicbar-bench --bin why-slow -- \
        --nodes 8 --drop 0.02 --seed 7 --check > /dev/null
}
gate "why-slow-smoke" why_slow_gate
echo "check.sh: why-slow smoke OK"

# Allocation gate: a steady-state NIC barrier must not touch the heap.
# The counting-allocator test runs in its own binary (process-wide
# allocator, single test), release mode so the measurement matches the
# shipped hot path.
gate "alloc-steady" cargo test --release -q --test alloc_steady
echo "check.sh: allocation gate OK"

# Scalability smoke: the quick sweep (sub-sampled grid up to the 65,536-node
# gm NIC-DS point) must complete, both dissemination curves must fit the
# ceil(log2 N) staircase, and the engine-comparison series must reproduce
# the sequential latency bit-for-bit under sharding. On hosts with >= 8
# hardware threads fig_scale additionally asserts the 8-shard parallel
# engine beats sequential by >= 4.5x on the 4096-node gm point (raised
# from 3x when adaptive lookahead + SPSC mailboxes landed; skipped with a
# visible message on smaller hosts) — fig_scale exits nonzero otherwise.
# Every run also appends the speedup series to BENCH_par.json; the before
# count feeds the trajectory gate below.
count_runs() { grep -c '"manifest"' "$1" 2>/dev/null || true; }
runs_before_par=$(count_runs BENCH_par.json); runs_before_par=${runs_before_par:-0}
fig_scale_gate() {
    cargo run --release -q -p nicbar-bench --bin fig_scale -- --quick > /dev/null
}
gate "fig-scale-smoke" fig_scale_gate
echo "check.sh: fig_scale smoke OK"

# Profile-guided partition parity smoke: the same quick sweep driven by
# the committed PR-7 profiler capture must pass fig_scale's internal
# sequential-vs-parallel identity assertions with the profile-derived
# shard map — the partitioner may only change wall-clock, never results.
fig_scale_profile_gate() {
    cargo run --release -q -p nicbar-bench --bin fig_scale -- --quick \
        --partition profile=results/engine_prof_pr7.json > /dev/null
}
gate "fig-scale-profile-partition" fig_scale_profile_gate
echo "check.sh: profile-guided partition parity OK"

# Tracked perf-trajectory artifacts: quick fig5/fig7 sweeps append a run
# to BENCH_fig5.json and BENCH_fig7.json at the repo root (median + p99
# per node count, one manifest-stamped entry per run). BENCH_scale.json
# gained its run from the fig_scale smoke above. The trajectory is
# append-only: the number of manifest-stamped runs in each artifact must
# never decrease across a regeneration (the writer caps the history at
# MAX_RUNS, so "not fewer than before, and at least one" is the invariant).
# BENCH_par.json (written by both fig_scale runs above) is held to the
# same monotonicity bar against its pre-smoke count. (grep -c prints 0
# *and* exits 1 on zero matches; missing file prints nothing — both
# normalized to a plain number by count_runs above.)
bench_trajectory_gate() {
    local runs_before_fig5 runs_before_fig7 runs_after_fig5 runs_after_fig7
    runs_before_fig5=$(count_runs BENCH_fig5.json); runs_before_fig5=${runs_before_fig5:-0}
    runs_before_fig7=$(count_runs BENCH_fig7.json); runs_before_fig7=${runs_before_fig7:-0}
    cargo run --release -q -p nicbar-bench --bin fig5 -- --quick > /dev/null
    cargo run --release -q -p nicbar-bench --bin fig7 -- --quick > /dev/null
    for f in BENCH_fig5.json BENCH_fig7.json BENCH_scale.json BENCH_par.json; do
        [ -s "$f" ] || { echo "check.sh: missing $f" >&2; return 1; }
        grep -q '"manifest"' "$f" || { echo "check.sh: $f lacks a manifest" >&2; return 1; }
        grep -q '"runs"' "$f" || { echo "check.sh: $f is not an append-only trajectory" >&2; return 1; }
    done
    runs_after_fig5=$(count_runs BENCH_fig5.json); runs_after_fig5=${runs_after_fig5:-0}
    runs_after_fig7=$(count_runs BENCH_fig7.json); runs_after_fig7=${runs_after_fig7:-0}
    if [ "$runs_after_fig5" -lt "$runs_before_fig5" ] || [ "$runs_after_fig7" -lt "$runs_before_fig7" ]; then
        echo "check.sh: trajectory shrank (fig5 $runs_before_fig5 -> $runs_after_fig5, fig7 $runs_before_fig7 -> $runs_after_fig7)" >&2
        return 1
    fi
    local runs_after_par
    runs_after_par=$(count_runs BENCH_par.json); runs_after_par=${runs_after_par:-0}
    if [ "$runs_after_par" -lt "$runs_before_par" ] || [ "$runs_after_par" -lt 1 ]; then
        echo "check.sh: BENCH_par.json trajectory shrank ($runs_before_par -> $runs_after_par)" >&2
        return 1
    fi
    echo "check.sh: BENCH artifacts OK (fig5 runs: $runs_after_fig5, fig7 runs: $runs_after_fig7, par runs: $runs_after_par)"
}
gate "bench-trajectory" bench_trajectory_gate

# Contention-observability smoke: the contend scenario (overlapping barrier
# groups + bulk traffic, run on both substrates) must attribute >= 95% of
# critical-path wait time to named resource holders via the occupancy
# ledger, report a top interferer, drop zero ledger records, and reproduce
# byte-identically on the sharded parallel engine (--check exits nonzero
# otherwise). Every run appends to BENCH_contend.json; like the other
# trajectories it is append-only — the manifest-stamped run count must
# never decrease, and must be at least one after the smoke.
contend_gate() {
    local runs_before runs_after
    runs_before=$(count_runs BENCH_contend.json); runs_before=${runs_before:-0}
    cargo run --release -q -p nicbar-bench --bin contend -- --quick --check > /dev/null
    runs_after=$(count_runs BENCH_contend.json); runs_after=${runs_after:-0}
    if [ "$runs_after" -lt "$runs_before" ] || [ "$runs_after" -lt 1 ]; then
        echo "check.sh: BENCH_contend.json trajectory shrank ($runs_before -> $runs_after)" >&2
        return 1
    fi
    echo "check.sh: contend trajectory OK (runs: $runs_after)"
}
gate "contend-smoke" contend_gate
echo "check.sh: contend smoke OK"

echo ""
echo "check.sh: per-gate wall time"
for i in "${!GATE_NAMES[@]}"; do
    printf '  %9ss  %s\n' "${GATE_SECS[$i]}" "${GATE_NAMES[$i]}"
done
echo "check.sh: all green"
