#!/usr/bin/env bash
# Full local gate: release build, workspace tests, clippy with warnings
# denied. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

echo "check.sh: all green"
