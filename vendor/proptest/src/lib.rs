//! A minimal, deterministic work-alike of the `proptest` crate.
//!
//! The build environment has no network access, so the real crates.io
//! `proptest` cannot be fetched. This crate reimplements exactly the API
//! surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` headers),
//! * [`Strategy`] with `prop_map`, ranges over the primitive numeric types,
//!   [`Just`], [`any`], `prop_oneof!`, and `prop::collection::vec`,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`,
//! * [`ProptestConfig`] and [`TestCaseError`].
//!
//! There is **no shrinking**: a failing case reports the generated inputs
//! (every strategy value is `Debug`) and the fixed per-case seed, which is
//! enough to reproduce — generation is fully deterministic per (test name,
//! case index).

use std::fmt;
use std::ops::Range;

/// Per-test configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property failed: the whole test fails.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`: the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (assumption not met) with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "inputs rejected: {m}"),
        }
    }
}

/// Outcome alias used by test bodies (`check_all(...)?` style).
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor; the `proptest!` runner derives one per case.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Widening-multiply mapping (Lemire, without the rejection step —
        // bias is irrelevant for test-case generation).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree; a
/// strategy simply produces a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of the generated values.
    type Value: fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
}

/// Uniform choice between boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: fmt::Debug> Union<T> {
    /// Build from the (non-empty) option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Marker returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for a type (only `bool` is needed here).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

// Tuples of strategies generate tuples of values, left to right.
macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: fmt::Debug),+
        {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of values from `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs, in one import.
pub mod prelude {
    /// `prop::collection::vec(...)`-style paths resolve through this alias.
    pub use crate as prop;
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Any, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Runner used by the expansion of [`proptest!`]. Not part of the public
/// proptest API, but must be `pub` for the macro.
#[doc(hidden)]
pub fn run_cases<F>(name: &str, cfg: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Deterministic per-test seed: FNV-1a over the test name.
    let mut seed = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rejects = 0u32;
    let mut ran = 0u32;
    let max_rejects = cfg.cases.saturating_mul(8).max(1024);
    let mut index = 0u64;
    while ran < cfg.cases {
        let mut rng = TestRng::new(seed ^ index.wrapping_mul(0xA24B_AED4_963E_E407));
        match case(&mut rng) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects < max_rejects,
                    "{name}: too many prop_assume! rejections ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case #{ran} (seed {seed:#x}, index {index}) failed: {msg}");
            }
        }
        index += 1;
    }
}

/// Declare property tests. Supports the subset of the real macro used in
/// this workspace: an optional `#![proptest_config(...)]` header followed by
/// `fn name(arg in strategy, ...) { body }` items carrying arbitrary
/// attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), &cfg, |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                    #[allow(unused_mut)]
                    let mut case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    match case() {
                        Err($crate::TestCaseError::Fail(msg)) => {
                            Err($crate::TestCaseError::Fail(format!(
                                "{msg}\n  inputs: {:?}",
                                ($(&$arg,)*)
                            )))
                        }
                        other => other,
                    }
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: Vec<Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(Box::new($strat)),+];
        $crate::Union::new(options)
    }};
}

/// Assert inside a property body; failure fails the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "{}: {:?} != {:?}",
                format!($($fmt)+),
                a,
                b
            )));
        }
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                a, b
            )));
        }
    }};
}

/// Skip the current case when its inputs do not meet an assumption.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1usize..4, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..4).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u32..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_mixes_options(choice in prop_oneof![Just(0.0), 1.0f64..2.0]) {
            prop_assert!(choice == 0.0 || (1.0..2.0).contains(&choice));
        }

        #[test]
        fn map_and_assume(d in (2usize..5).prop_map(|x| x * 2), flag in any::<bool>()) {
            prop_assume!(d != 6 || flag);
            prop_assert!(d == 4 || d == 6 || d == 8);
        }
    }
}
