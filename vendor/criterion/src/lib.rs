//! A minimal, offline work-alike of the `criterion` benchmarking crate.
//!
//! The build environment has no network access, so the real crates.io
//! `criterion` cannot be fetched. This crate covers the API surface the
//! workspace's `harness = false` benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — with a simple but honest measurement loop:
//!
//! * each sample times a batch of iterations sized so a sample takes at
//!   least ~5 ms (one iteration if it is already slower than that),
//! * `sample_size` samples are collected after one untimed warm-up call,
//! * the median per-iteration time is reported, with throughput when the
//!   group set one.
//!
//! Results are printed to stdout in a stable `group/bench  time: ...` format
//! (no HTML reports, no statistics beyond min/median/max).

use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter, printed as
/// `name/param`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Filled by `iter`: median per-iteration time.
    result: Option<Sample>,
}

#[derive(Clone, Copy, Debug)]
struct Sample {
    min: Duration,
    median: Duration,
    max: Duration,
}

impl Bencher {
    /// Measure `f`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Untimed warm-up call; also used to size the batch.
        let probe_start = Instant::now();
        black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        const TARGET: Duration = Duration::from_millis(5);
        let batch: u32 = if probe >= TARGET {
            1
        } else {
            (TARGET.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u32
        };
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter.push(start.elapsed() / batch);
        }
        per_iter.sort_unstable();
        self.result = Some(Sample {
            min: per_iter[0],
            median: per_iter[per_iter.len() / 2],
            max: per_iter[per_iter.len() - 1],
        });
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Per-iteration work, for derived throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the measurement loop is time-bounded
    /// by construction, so this is a no-op.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.label, |b| f(b));
        self
    }

    /// Run one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.label, |b| f(b, input));
        self
    }

    fn run(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.name, label);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(s) => {
                let thrpt = self.throughput.map(|t| match t {
                    Throughput::Elements(n) => {
                        format!(
                            "  thrpt: {}/s",
                            si(n as f64 / s.median.as_secs_f64(), "elem")
                        )
                    }
                    Throughput::Bytes(n) => {
                        format!("  thrpt: {}/s", si(n as f64 / s.median.as_secs_f64(), "B"))
                    }
                });
                println!(
                    "{full:<48} time: [{} {} {}]{}",
                    fmt_dur(s.min),
                    fmt_dur(s.median),
                    fmt_dur(s.max),
                    thrpt.unwrap_or_default()
                );
            }
            None => println!("{full:<48} (no measurement: bencher.iter never called)"),
        }
    }

    /// End the group (printing is incremental; this is a no-op).
    pub fn finish(&mut self) {}
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn si(v: f64, unit: &str) -> String {
    if v >= 1e9 {
        format!("{:.2} G{unit}", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M{unit}", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K{unit}", v / 1e3)
    } else {
        format!("{v:.1} {unit}")
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards everything after `--`; treat the
        // first non-flag argument as a substring filter, like real criterion.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }

    /// Accepted for API compatibility (argument handling happens in
    /// `Default::default`).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        g.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                (0..100u64).sum::<u64>()
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).label, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
